module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng

(* A small fixed instance used across tests:
     net 0: {0 1 2}   net 1: {1 3}   net 2: {2 3 4}   net 3: {0 4} *)
let sample () =
  H.create ~num_vertices:5
    ~edges:[| [| 0; 1; 2 |]; [| 1; 3 |]; [| 2; 3; 4 |]; [| 0; 4 |] |]
    ()

let test_sizes () =
  let h = sample () in
  Alcotest.(check int) "vertices" 5 (H.num_vertices h);
  Alcotest.(check int) "edges" 4 (H.num_edges h);
  Alcotest.(check int) "pins" 10 (H.num_pins h)

let test_edge_pins () =
  let h = sample () in
  Alcotest.(check (array int)) "net 0" [| 0; 1; 2 |] (H.edge_pins h 0);
  Alcotest.(check (array int)) "net 3" [| 0; 4 |] (H.edge_pins h 3);
  Alcotest.(check int) "size of net 1" 2 (H.edge_size h 1)

let test_vertex_edges () =
  let h = sample () in
  let sorted v =
    let a = H.vertex_edges h v in
    Array.sort compare a;
    a
  in
  Alcotest.(check (array int)) "vertex 0" [| 0; 3 |] (sorted 0);
  Alcotest.(check (array int)) "vertex 3" [| 1; 2 |] (sorted 3);
  Alcotest.(check int) "degree of 2" 2 (H.vertex_degree h 2)

let test_default_weights () =
  let h = sample () in
  for v = 0 to 4 do
    Alcotest.(check int) "unit area" 1 (H.vertex_weight h v)
  done;
  Alcotest.(check int) "total" 5 (H.total_vertex_weight h);
  Alcotest.(check int) "max edge weight" 1 (H.max_edge_weight h)

let test_explicit_weights () =
  let h =
    H.create ~num_vertices:3 ~vertex_weights:[| 5; 1; 9 |] ~edge_weights:[| 2 |]
      ~edges:[| [| 0; 1; 2 |] |] ()
  in
  Alcotest.(check int) "vertex weight" 9 (H.vertex_weight h 2);
  Alcotest.(check int) "edge weight" 2 (H.edge_weight h 0);
  Alcotest.(check int) "total" 15 (H.total_vertex_weight h);
  Alcotest.(check int) "max vertex weight" 9 (H.max_vertex_weight h)

let test_duplicate_pins_merged () =
  let h = H.create ~num_vertices:3 ~edges:[| [| 0; 1; 0; 1; 2; 2 |] |] () in
  Alcotest.(check int) "deduped size" 3 (H.edge_size h 0);
  Alcotest.(check (array int)) "order preserved" [| 0; 1; 2 |] (H.edge_pins h 0)

let test_invalid_inputs () =
  let bad f = Alcotest.check_raises "rejected" (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  bad (fun () -> ignore (H.create ~num_vertices:2 ~edges:[| [| 0; 5 |] |] ()));
  bad (fun () -> ignore (H.create ~num_vertices:2 ~edges:[| [| 0; -1 |] |] ()));
  bad (fun () ->
      ignore (H.create ~num_vertices:2 ~vertex_weights:[| 1 |] ~edges:[||] ()));
  bad (fun () ->
      ignore (H.create ~num_vertices:2 ~vertex_weights:[| 1; 0 |] ~edges:[||] ()))

let test_iterators_match_arrays () =
  let h = sample () in
  for e = 0 to H.num_edges h - 1 do
    let acc = ref [] in
    H.iter_pins h e (fun v -> acc := v :: !acc);
    Alcotest.(check (list int)) "iter_pins" (Array.to_list (H.edge_pins h e))
      (List.rev !acc)
  done;
  let total = H.fold_edges h 3 ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold_edges counts degree" (H.vertex_degree h 3) total

let test_components_connected () =
  let h = sample () in
  let _, n = H.components h in
  Alcotest.(check int) "one component" 1 n

let test_components_disconnected () =
  let h =
    H.create ~num_vertices:6 ~edges:[| [| 0; 1 |]; [| 2; 3 |]; [| 3; 4 |] |] ()
  in
  let comp, n = H.components h in
  Alcotest.(check int) "three components" 3 n;
  Alcotest.(check bool) "2,3,4 together" true (comp.(2) = comp.(3) && comp.(3) = comp.(4));
  Alcotest.(check bool) "0,1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "separate" true (comp.(0) <> comp.(2) && comp.(5) <> comp.(0))

let test_stats () =
  let h = sample () in
  let s = H.stats h in
  Alcotest.(check int) "pins" 10 s.Hypart_hypergraph.Stats_summary.num_pins;
  Alcotest.(check (float 1e-9)) "avg degree" 2.0
    s.Hypart_hypergraph.Stats_summary.avg_vertex_degree;
  Alcotest.(check (float 1e-9)) "avg net size" 2.5
    s.Hypart_hypergraph.Stats_summary.avg_edge_size;
  Alcotest.(check int) "no mega nets" 0
    s.Hypart_hypergraph.Stats_summary.edges_over_50_pins

(* Contraction: merge {0,1} and {3,4}; keep 2 alone.
   net 0 {0 1 2} -> {A 2}; net 1 {1 3} -> {A B}; net 2 {2 3 4} -> {2 B};
   net 3 {0 4} -> {A B} merged with net 1. *)
let test_contract () =
  let h = sample () in
  let cluster_of = [| 0; 0; 1; 2; 2 |] in
  let coarse, edge_map = H.contract h ~cluster_of ~num_clusters:3 in
  Alcotest.(check int) "coarse vertices" 3 (H.num_vertices coarse);
  Alcotest.(check int) "coarse edges (net 3 merged into net 1)" 3
    (H.num_edges coarse);
  Alcotest.(check int) "weight of cluster 0" 2 (H.vertex_weight coarse 0);
  Alcotest.(check int) "weight of cluster 1" 1 (H.vertex_weight coarse 1);
  Alcotest.(check bool) "nets 1 and 3 map to same coarse net" true
    (edge_map.(1) = edge_map.(3) && edge_map.(1) >= 0);
  let merged = edge_map.(1) in
  Alcotest.(check int) "merged weight doubled" 2 (H.edge_weight coarse merged)

let test_contract_drops_internal_nets () =
  let h = sample () in
  (* everything into one cluster except vertex 4 *)
  let cluster_of = [| 0; 0; 0; 0; 1 |] in
  let coarse, edge_map = H.contract h ~cluster_of ~num_clusters:2 in
  (* nets 0 and 1 are fully internal -> dropped; nets 2 and 3 become {0 1},
     merged. *)
  Alcotest.(check int) "one coarse net" 1 (H.num_edges coarse);
  Alcotest.(check int) "net 0 dropped" (-1) edge_map.(0);
  Alcotest.(check int) "net 1 dropped" (-1) edge_map.(1);
  Alcotest.(check int) "merged net weight" 2 (H.edge_weight coarse edge_map.(2))

let test_contract_conserves_weight () =
  let h = sample () in
  let coarse, _ = H.contract h ~cluster_of:[| 0; 1; 0; 1; 0 |] ~num_clusters:2 in
  Alcotest.(check int) "total area conserved" (H.total_vertex_weight h)
    (H.total_vertex_weight coarse)

let test_induce () =
  let h = sample () in
  let keep = [| true; true; true; false; false |] in
  let sub, vmap = H.induce h ~keep in
  Alcotest.(check int) "kept vertices" 3 (H.num_vertices sub);
  (* net 0 survives whole; net 1 -> {1}, dropped; net 2 -> {2}, dropped;
     net 3 -> {0}, dropped *)
  Alcotest.(check int) "one surviving net" 1 (H.num_edges sub);
  Alcotest.(check int) "vertex 3 dropped" (-1) vmap.(3);
  Alcotest.(check int) "vertex 0 kept" 0 vmap.(0)

let test_empty_graph () =
  let h = H.create ~num_vertices:0 ~edges:[||] () in
  Alcotest.(check int) "no vertices" 0 (H.num_vertices h);
  Alcotest.(check int) "no pins" 0 (H.num_pins h);
  let _, n = H.components h in
  Alcotest.(check int) "no components" 0 n

let test_single_vertex () =
  let h = H.create ~num_vertices:1 ~edges:[| [| 0 |] |] () in
  Alcotest.(check int) "one vertex" 1 (H.num_vertices h);
  Alcotest.(check int) "degree" 1 (H.vertex_degree h 0);
  Alcotest.(check int) "edge size" 1 (H.edge_size h 0);
  let _, n = H.components h in
  Alcotest.(check int) "one component" 1 n

let test_self_loop_net_collapses () =
  (* an edge listing the same vertex repeatedly reduces to one pin *)
  let h = H.create ~num_vertices:2 ~edges:[| [| 1; 1; 1 |] |] () in
  Alcotest.(check int) "collapsed" 1 (H.edge_size h 0)

let test_contract_identity () =
  let h = sample () in
  let cluster_of = Array.init 5 (fun v -> v) in
  let coarse, edge_map = H.contract h ~cluster_of ~num_clusters:5 in
  Alcotest.(check int) "same vertices" 5 (H.num_vertices coarse);
  Alcotest.(check int) "same edges" 4 (H.num_edges coarse);
  Array.iteri
    (fun e c -> Alcotest.(check int) "identity edge map" e c)
    edge_map

let test_reweight_edges () =
  let h = sample () in
  let h' = H.reweight_edges h ~weights:[| 5; 1; 2; 9 |] in
  Alcotest.(check int) "new weight" 5 (H.edge_weight h' 0);
  Alcotest.(check int) "max edge weight updated" 9 (H.max_edge_weight h');
  Alcotest.(check int) "original untouched" 1 (H.edge_weight h 0);
  Alcotest.(check (array int)) "structure shared" (H.edge_pins h 2) (H.edge_pins h' 2);
  Alcotest.check_raises "bad length" (Invalid_argument "x") (fun () ->
      try ignore (H.reweight_edges h ~weights:[| 1 |])
      with Invalid_argument _ -> raise (Invalid_argument "x"));
  Alcotest.check_raises "non-positive" (Invalid_argument "x") (fun () ->
      try ignore (H.reweight_edges h ~weights:[| 1; 0; 1; 1 |])
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_induce_all_kept () =
  let h = sample () in
  let sub, vmap = H.induce h ~keep:(Array.make 5 true) in
  Alcotest.(check int) "same vertices" 5 (H.num_vertices sub);
  Alcotest.(check int) "same edges" 4 (H.num_edges sub);
  Alcotest.(check (array int)) "identity map" [| 0; 1; 2; 3; 4 |] vmap

let test_pretty_printers () =
  let h = sample () in
  let hp = Format.asprintf "%a" H.pp h in
  Alcotest.(check string) "hypergraph pp"
    "hypergraph: 5 vertices, 4 edges, 10 pins" hp;
  let sp = Format.asprintf "%a" Hypart_hypergraph.Stats_summary.pp (H.stats h) in
  Alcotest.(check bool) "stats pp mentions pins" true
    (let needle = "pins: 10" in
     let nl = String.length needle and sl = String.length sp in
     let rec scan i = i + nl <= sl && (String.sub sp i nl = needle || scan (i + 1)) in
     scan 0)

(* Random hypergraph for property tests. *)
let random_hypergraph seed nv ne =
  let rng = Rng.create seed in
  let edges =
    Array.init ne (fun _ ->
        let size = 2 + Rng.int rng 4 in
        let size = min size nv in
        Rng.sample_distinct rng ~n:size ~universe:nv)
  in
  H.create ~num_vertices:nv ~edges ()

let prop_incidence_symmetric =
  QCheck.Test.make ~name:"vertex->edge and edge->vertex incidences agree"
    ~count:50
    QCheck.(triple small_int (int_range 2 60) (int_range 1 120))
    (fun (seed, nv, ne) ->
      let h = random_hypergraph seed nv ne in
      let ok = ref true in
      for e = 0 to H.num_edges h - 1 do
        H.iter_pins h e (fun v ->
            let found = ref false in
            H.iter_edges h v (fun e' -> if e' = e then found := true);
            if not !found then ok := false)
      done;
      for v = 0 to H.num_vertices h - 1 do
        H.iter_edges h v (fun e ->
            let found = ref false in
            H.iter_pins h e (fun v' -> if v' = v then found := true);
            if not !found then ok := false)
      done;
      !ok)

let prop_contract_weight_conserved =
  QCheck.Test.make ~name:"contraction conserves total vertex weight" ~count:50
    QCheck.(triple small_int (int_range 4 60) (int_range 1 120))
    (fun (seed, nv, ne) ->
      let h = random_hypergraph seed nv ne in
      let rng = Rng.create (seed + 1) in
      let k = 1 + Rng.int rng (nv - 1) in
      (* surjective cluster map: first k vertices pin down each cluster *)
      let cluster_of =
        Array.init nv (fun v -> if v < k then v else Rng.int rng k)
      in
      let coarse, _ = H.contract h ~cluster_of ~num_clusters:k in
      H.total_vertex_weight coarse = H.total_vertex_weight h
      && H.num_vertices coarse = k)

let prop_contract_no_trivial_nets =
  QCheck.Test.make ~name:"contraction leaves no single-pin nets" ~count:50
    QCheck.(triple small_int (int_range 4 60) (int_range 1 120))
    (fun (seed, nv, ne) ->
      let h = random_hypergraph seed nv ne in
      let rng = Rng.create (seed + 2) in
      let k = 2 + Rng.int rng (nv - 2) in
      let cluster_of =
        Array.init nv (fun v -> if v < k then v else Rng.int rng k)
      in
      let coarse, _ = H.contract h ~cluster_of ~num_clusters:k in
      let ok = ref true in
      for e = 0 to H.num_edges coarse - 1 do
        if H.edge_size coarse e < 2 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "hypergraph"
    [
      ( "construction",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "edge pins" `Quick test_edge_pins;
          Alcotest.test_case "vertex edges" `Quick test_vertex_edges;
          Alcotest.test_case "default weights" `Quick test_default_weights;
          Alcotest.test_case "explicit weights" `Quick test_explicit_weights;
          Alcotest.test_case "duplicate pins merged" `Quick test_duplicate_pins_merged;
          Alcotest.test_case "invalid inputs rejected" `Quick test_invalid_inputs;
          Alcotest.test_case "iterators" `Quick test_iterators_match_arrays;
        ] );
      ( "queries",
        [
          Alcotest.test_case "connected" `Quick test_components_connected;
          Alcotest.test_case "disconnected" `Quick test_components_disconnected;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "self-loop net" `Quick test_self_loop_net_collapses;
          Alcotest.test_case "contract identity" `Quick test_contract_identity;
          Alcotest.test_case "induce all kept" `Quick test_induce_all_kept;
          Alcotest.test_case "reweight edges" `Quick test_reweight_edges;
          Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
        ] );
      ( "derived",
        [
          Alcotest.test_case "contract" `Quick test_contract;
          Alcotest.test_case "contract drops internal nets" `Quick
            test_contract_drops_internal_nets;
          Alcotest.test_case "contract conserves weight" `Quick
            test_contract_conserves_weight;
          Alcotest.test_case "induce" `Quick test_induce;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_incidence_symmetric;
          QCheck_alcotest.to_alcotest prop_contract_weight_conserved;
          QCheck_alcotest.to_alcotest prop_contract_no_trivial_nets;
        ] );
    ]
