module H = Hypart_hypergraph.Hypergraph
module K = Hypart_partition.Kway_objective

(* net 0 {0 1 2}, net 1 {1 3}, net 2 {2 3 4}, net 3 {0 4}; weight of
   net 3 is 2 *)
let sample () =
  H.create ~num_vertices:5
    ~edge_weights:[| 1; 1; 1; 2 |]
    ~edges:[| [| 0; 1; 2 |]; [| 1; 3 |]; [| 2; 3; 4 |]; [| 0; 4 |] |]
    ()

let test_lambda () =
  let h = sample () in
  let part_of = [| 0; 1; 2; 1; 0 |] in
  Alcotest.(check int) "net 0 touches 3 parts" 3 (K.lambda h part_of 0);
  Alcotest.(check int) "net 1 internal to part 1" 1 (K.lambda h part_of 1);
  Alcotest.(check int) "net 2 touches 3" 3 (K.lambda h part_of 2);
  Alcotest.(check int) "net 3 internal to part 0" 1 (K.lambda h part_of 3)

let test_metrics () =
  let h = sample () in
  let part_of = [| 0; 1; 2; 1; 0 |] in
  (* cut: nets 0 and 2 span -> 1 + 1 = 2 *)
  Alcotest.(check int) "cut" 2 (K.cut h part_of);
  (* k-1: net0 (3-1) + net1 0 + net2 (3-1) + net3 0 = 4 *)
  Alcotest.(check int) "k-1" 4 (K.k_minus_1 h part_of);
  (* soed: net0 3 + net2 3 = 6 *)
  Alcotest.(check int) "soed" 6 (K.soed h part_of)

let test_metrics_agree_for_bipartitions () =
  let h = sample () in
  let part_of = [| 0; 0; 1; 1; 0 |] in
  (* for k = 2, cut = k-1 metric, and soed = 2 cut *)
  Alcotest.(check int) "cut = k-1" (K.cut h part_of) (K.k_minus_1 h part_of);
  Alcotest.(check int) "soed = 2 cut" (2 * K.cut h part_of) (K.soed h part_of)

let test_weighted () =
  let h = sample () in
  (* cut net 3 (weight 2) only: split {0} vs rest... net3 {0,4}: parts 0/1;
     net0 {0,1,2}: 0 with 1 -> spans. Choose parts to cut only net 3:
     impossible (0 shares net0). Use all-same except 4. *)
  let part_of = [| 0; 0; 0; 0; 1 |] in
  (* nets spanning: net2 {2,3,4} and net3 {0,4} -> cut = 1 + 2 = 3 *)
  Alcotest.(check int) "weighted cut" 3 (K.cut h part_of);
  Alcotest.(check int) "weighted soed" 6 (K.soed h part_of)

let test_part_weights () =
  let h = sample () in
  let w = K.part_weights h [| 0; 1; 2; 1; 0 |] ~k:3 in
  Alcotest.(check (array int)) "weights" [| 2; 2; 1 |] w;
  Alcotest.check_raises "out of range" (Invalid_argument "x") (fun () ->
      try ignore (K.part_weights h [| 0; 1; 5; 1; 0 |] ~k:3)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_consistency_with_engines () =
  let h = Hypart_generator.Ibm_suite.instance ~scale:32.0 "ibm01" in
  let r = Hypart_multilevel.Recursive_bisection.run ~k:4 (Hypart_rng.Rng.create 1) h in
  Alcotest.(check int) "rb cut = objective cut"
    r.Hypart_multilevel.Recursive_bisection.cut
    (K.cut h r.Hypart_multilevel.Recursive_bisection.part_of);
  Alcotest.(check bool) "k-1 >= cut" true
    (K.k_minus_1 h r.Hypart_multilevel.Recursive_bisection.part_of
    >= K.cut h r.Hypart_multilevel.Recursive_bisection.part_of)

let test_ml_kway_multistart () =
  let h = Hypart_generator.Ibm_suite.instance ~scale:32.0 "ibm01" in
  let best, cuts =
    Hypart_multilevel.Ml_kway.multistart ~k:3 (Hypart_rng.Rng.create 2) h
      ~starts:3
  in
  Alcotest.(check int) "3 cuts" 3 (List.length cuts);
  List.iter
    (fun c ->
      Alcotest.(check bool) "best <= each" true
        (best.Hypart_fm.Kway_fm.cut <= c))
    cuts

let () =
  Alcotest.run "kway_objective"
    [
      ( "metrics",
        [
          Alcotest.test_case "lambda" `Quick test_lambda;
          Alcotest.test_case "cut / k-1 / soed" `Quick test_metrics;
          Alcotest.test_case "bipartition identities" `Quick
            test_metrics_agree_for_bipartitions;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "part weights" `Quick test_part_weights;
          Alcotest.test_case "engine consistency" `Quick
            test_consistency_with_engines;
          Alcotest.test_case "ml kway multistart" `Quick test_ml_kway_multistart;
        ] );
    ]
