module H = Hypart_hypergraph.Hypergraph
module Clique = Hypart_hypergraph.Clique_expansion
module Rng = Hypart_rng.Rng
module Bipartition = Hypart_partition.Bipartition
module Spectral = Hypart_spectral.Spectral
module Suite = Hypart_generator.Ibm_suite

(* -- clique expansion -- *)

let test_clique_weights () =
  (* a 3-pin net: weight w/(s-1) = 1/2 between each pair *)
  let h = H.create ~num_vertices:3 ~edges:[| [| 0; 1; 2 |] |] () in
  let adj = Clique.adjacency h in
  Alcotest.(check int) "v0 has 2 neighbours" 2 (List.length adj.(0));
  List.iter
    (fun (_, w) -> Alcotest.(check (float 1e-9)) "pair weight" 0.5 w)
    adj.(0)

let test_clique_accumulates () =
  (* two 2-pin nets between the same pair accumulate *)
  let h = H.create ~num_vertices:2 ~edges:[| [| 0; 1 |]; [| 0; 1 |] |] () in
  let adj = Clique.adjacency h in
  Alcotest.(check int) "one neighbour entry" 1 (List.length adj.(0));
  Alcotest.(check (float 1e-9)) "accumulated weight" 2.0 (snd (List.hd adj.(0)))

let test_clique_skips_large_nets () =
  let h =
    H.create ~num_vertices:10
      ~edges:[| Array.init 10 (fun i -> i); [| 0; 1 |] |]
      ()
  in
  let adj = Clique.adjacency ~skip_nets_above:5 h in
  Alcotest.(check int) "only the small net contributes" 1 (List.length adj.(0));
  Alcotest.(check int) "isolated under the model" 0 (List.length adj.(9))

let test_clique_degrees () =
  let h = H.create ~num_vertices:3 ~edges:[| [| 0; 1; 2 |] |] () in
  let deg = Clique.degrees (Clique.adjacency h) in
  Array.iter (fun d -> Alcotest.(check (float 1e-9)) "degree 1.0" 1.0 d) deg

(* -- spectral -- *)

let two_clusters () =
  let clique lo =
    let acc = ref [] in
    for i = 0 to 7 do
      for j = i + 1 to 7 do
        acc := [| lo + i; lo + j |] :: !acc
      done
    done;
    !acc
  in
  H.create ~num_vertices:16
    ~edges:(Array.of_list (clique 0 @ clique 8 @ [ [| 0; 8 |] ]))
    ()

let test_spectral_two_clusters () =
  let h = two_clusters () in
  let r = Spectral.run (Rng.create 1) h in
  Alcotest.(check int) "finds the bridge" 1 r.Spectral.cut;
  (* the two cliques end up on opposite sides *)
  let s = r.Spectral.solution in
  for v = 1 to 7 do
    Alcotest.(check int) "clique A together" (Bipartition.side s 0)
      (Bipartition.side s v)
  done;
  for v = 9 to 15 do
    Alcotest.(check int) "clique B together" (Bipartition.side s 8)
      (Bipartition.side s v)
  done

let test_spectral_fiedler_signs () =
  (* on two cliques the Fiedler coordinates separate by sign *)
  let h = two_clusters () in
  let r = Spectral.run (Rng.create 2) h in
  let f = r.Spectral.fiedler in
  let sign x = x >= 0.0 in
  for v = 1 to 7 do
    Alcotest.(check bool) "same sign in A" (sign f.(0)) (sign f.(v))
  done;
  Alcotest.(check bool) "opposite across" (not (sign f.(0))) (sign f.(8))

let test_spectral_cut_consistent () =
  let h = Suite.instance ~scale:32.0 "ibm01" in
  let r = Spectral.run (Rng.create 3) h in
  Alcotest.(check int) "cut matches solution"
    (Bipartition.cut h r.Spectral.solution)
    r.Spectral.cut;
  Alcotest.(check bool) "nonempty parts" true
    (Bipartition.part_weight r.Spectral.solution 0 > 0
    && Bipartition.part_weight r.Spectral.solution 1 > 0)

let test_spectral_better_than_random_split () =
  let h = Suite.instance ~scale:32.0 "ibm01" in
  let r = Spectral.run (Rng.create 4) h in
  (* random split of the same sizes *)
  let n = H.num_vertices h in
  let k = ref 0 in
  for v = 0 to n - 1 do
    if Bipartition.side r.Spectral.solution v = 0 then incr k
  done;
  let perm = Rng.permutation (Rng.create 5) n in
  let side = Array.make n 1 in
  for i = 0 to !k - 1 do
    side.(perm.(i)) <- 0
  done;
  let random_cut = Bipartition.cut h (Bipartition.make h side) in
  Alcotest.(check bool)
    (Printf.sprintf "spectral %d < random %d" r.Spectral.cut random_cut)
    true
    (r.Spectral.cut < random_cut)

let test_spectral_deterministic () =
  let h = Suite.instance ~scale:64.0 "ibm02" in
  let a = Spectral.run (Rng.create 6) h in
  let b = Spectral.run (Rng.create 6) h in
  Alcotest.(check int) "same seed same cut" a.Spectral.cut b.Spectral.cut

let test_spectral_tiny () =
  let h = H.create ~num_vertices:2 ~edges:[| [| 0; 1 |] |] () in
  let r = Spectral.run (Rng.create 7) h in
  Alcotest.(check bool) "handles 2 vertices" true (r.Spectral.cut >= 0);
  Alcotest.check_raises "rejects 1 vertex" (Invalid_argument "x") (fun () ->
      try ignore (Spectral.run (Rng.create 8) (H.create ~num_vertices:1 ~edges:[||] ()))
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let () =
  Alcotest.run "spectral"
    [
      ( "clique expansion",
        [
          Alcotest.test_case "pair weights" `Quick test_clique_weights;
          Alcotest.test_case "accumulation" `Quick test_clique_accumulates;
          Alcotest.test_case "large nets skipped" `Quick test_clique_skips_large_nets;
          Alcotest.test_case "degrees" `Quick test_clique_degrees;
        ] );
      ( "eig1",
        [
          Alcotest.test_case "two clusters" `Quick test_spectral_two_clusters;
          Alcotest.test_case "fiedler signs" `Quick test_spectral_fiedler_signs;
          Alcotest.test_case "cut consistent" `Quick test_spectral_cut_consistent;
          Alcotest.test_case "beats random" `Quick test_spectral_better_than_random_split;
          Alcotest.test_case "deterministic" `Quick test_spectral_deterministic;
          Alcotest.test_case "tiny inputs" `Quick test_spectral_tiny;
        ] );
    ]
