module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Bipartition = Hypart_partition.Bipartition
module Problem = Hypart_partition.Problem
module Fm = Hypart_fm.Fm

type result = {
  part_of : int array;
  cut : int;
  part_weights : int array;
}

let kway_cut h part_of =
  let total = ref 0 in
  for e = 0 to H.num_edges h - 1 do
    let first = ref (-1) and spans = ref false in
    H.iter_pins h e (fun v ->
        if !first = -1 then first := part_of.(v)
        else if part_of.(v) <> !first then spans := true);
    if !spans then total := !total + H.edge_weight h e
  done;
  !total

let run ?(config = Ml_partitioner.default) ?(tolerance = 0.10) ~k rng h =
  let n = H.num_vertices h in
  if k < 1 then invalid_arg "Recursive_bisection.run: k must be >= 1";
  if k > n then invalid_arg "Recursive_bisection.run: k exceeds vertex count";
  let part_of = Array.make n (-1) in
  (* [go cells k first_id] assigns parts [first_id .. first_id + k - 1]
     to [cells]. *)
  let rec go cells k first_id =
    if k = 1 then Array.iter (fun v -> part_of.(v) <- first_id) cells
    else if Array.length cells <= k then
      (* give each cell its own part; trailing parts may stay empty *)
      Array.iteri (fun i v -> part_of.(v) <- first_id + min i (k - 1)) cells
    else begin
      let k0 = (k + 1) / 2 in
      let k1 = k - k0 in
      let keep = Array.make n false in
      Array.iter (fun v -> keep.(v) <- true) cells;
      let sub, vmap = H.induce h ~keep in
      let fraction = float_of_int k0 /. float_of_int k in
      let problem = Problem.make ~fraction ~tolerance sub in
      let r = Ml_partitioner.run ~config rng problem in
      ignore (r.Fm.legal : bool);
      let side_of v = Bipartition.side r.Fm.solution vmap.(v) in
      let cells0 = Array.of_list (List.filter (fun v -> side_of v = 0) (Array.to_list cells)) in
      let cells1 = Array.of_list (List.filter (fun v -> side_of v = 1) (Array.to_list cells)) in
      (* a degenerate (empty-side) split would recurse forever: fall
         back to an index split, which the balance makes unlikely *)
      let cells0, cells1 =
        if Array.length cells0 = 0 || Array.length cells1 = 0 then begin
          let m = Array.length cells * k0 / k in
          (Array.sub cells 0 m, Array.sub cells m (Array.length cells - m))
        end
        else (cells0, cells1)
      in
      go cells0 k0 first_id;
      go cells1 k1 (first_id + k0)
    end
  in
  go (Array.init n (fun v -> v)) k 0;
  let part_weights = Array.make k 0 in
  Array.iteri
    (fun v p -> part_weights.(p) <- part_weights.(p) + H.vertex_weight h v)
    part_of;
  { part_of; cut = kway_cut h part_of; part_weights }
