lib/multilevel/matching.ml: Array Hypart_hypergraph Hypart_rng
