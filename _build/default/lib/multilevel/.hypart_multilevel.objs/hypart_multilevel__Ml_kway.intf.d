lib/multilevel/ml_kway.mli: Hypart_fm Hypart_hypergraph Hypart_rng Matching
