lib/multilevel/matching.mli: Hypart_hypergraph Hypart_rng
