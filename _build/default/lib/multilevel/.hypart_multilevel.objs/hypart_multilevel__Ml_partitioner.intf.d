lib/multilevel/ml_partitioner.mli: Hypart_fm Hypart_partition Hypart_rng Matching
