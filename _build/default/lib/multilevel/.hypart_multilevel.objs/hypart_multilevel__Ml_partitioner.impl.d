lib/multilevel/ml_partitioner.ml: Array Coarsen Hypart_fm Hypart_hypergraph Hypart_partition Hypart_rng List Logs Matching Option Sys
