lib/multilevel/ml_kway.ml: Array Coarsen Hypart_fm Hypart_hypergraph Hypart_partition Hypart_rng List Matching Option
