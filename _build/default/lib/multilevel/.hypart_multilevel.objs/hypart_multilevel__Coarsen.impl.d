lib/multilevel/coarsen.ml: Array Hypart_hypergraph Hypart_partition Hypart_rng List Matching Option
