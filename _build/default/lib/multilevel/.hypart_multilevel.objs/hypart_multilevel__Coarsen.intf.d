lib/multilevel/coarsen.mli: Hypart_hypergraph Hypart_partition Hypart_rng Matching
