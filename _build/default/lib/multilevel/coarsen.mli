(** Construction of the multilevel hierarchy. *)

type level = {
  coarse : Hypart_hypergraph.Hypergraph.t;
  cluster_of : int array;  (** fine vertex -> coarse vertex *)
  coarse_fixed : int array;  (** propagated fixed sides, [-1] = free *)
}

type hierarchy = {
  problem : Hypart_partition.Problem.t;  (** the finest-level problem *)
  levels : level list;  (** fine-to-coarse order *)
}

val coarsest :
  hierarchy -> Hypart_hypergraph.Hypergraph.t * int array
(** Hypergraph and fixed array of the coarsest level (the original
    instance when [levels] is empty). *)

val build :
  scheme:Matching.scheme ->
  rng:Hypart_rng.Rng.t ->
  coarsest_size:int ->
  max_cluster_weight:int ->
  ?restrict_to_parts:int array ->
  Hypart_partition.Problem.t ->
  hierarchy
(** Repeat match-and-contract until the vertex count drops to
    [coarsest_size] or a level shrinks by less than 10% (stagnation —
    further levels would waste time without helping refinement).  When
    [restrict_to_parts] is given (V-cycling), clusters never straddle
    the given bipartition, so the partition projects exactly onto every
    level of the hierarchy. *)

val project :
  level -> Hypart_partition.Bipartition.t -> fine:Hypart_hypergraph.Hypergraph.t ->
  Hypart_partition.Bipartition.t
(** Push a coarse solution one level down: every fine vertex inherits
    its cluster's side. *)
