module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng

type scheme =
  | Edge_coarsening
  | Heavy_edge
  | First_choice
  | Hyperedge_coarsening

(* Pair matching (EC / heavy-edge): visit vertices in random order and
   pair each unmatched vertex with its best unmatched neighbour. *)
let pair_matching ~scheme ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
    ~skip_nets_above h =
  let n = H.num_vertices h in
  let cluster_of = Array.make n (-1) in
  let next_cluster = ref 0 in
  let score = Array.make n 0.0 in
  let stamp = Array.make n (-1) in
  let touched = Array.make n 0 in
  let compatible v u =
    cluster_of.(u) = -1
    && u <> v
    && H.vertex_weight h v + H.vertex_weight h u <= max_cluster_weight
    && (fixed.(v) < 0 || fixed.(u) < 0 || fixed.(v) = fixed.(u))
    && (match restrict_to_parts with
        | None -> true
        | Some part -> part.(v) = part.(u))
  in
  let order = Rng.permutation rng n in
  Array.iter
    (fun v ->
      if cluster_of.(v) = -1 then begin
        let n_touched = ref 0 in
        H.iter_edges h v (fun e ->
            let size = H.edge_size h e in
            if size <= skip_nets_above then begin
              let w =
                match scheme with
                | Heavy_edge -> float_of_int (H.edge_weight h e)
                | Edge_coarsening | First_choice | Hyperedge_coarsening ->
                  float_of_int (H.edge_weight h e) /. float_of_int (size - 1)
              in
              H.iter_pins h e (fun u ->
                  if compatible v u then begin
                    if stamp.(u) <> v then begin
                      stamp.(u) <- v;
                      score.(u) <- 0.0;
                      touched.(!n_touched) <- u;
                      incr n_touched
                    end;
                    score.(u) <- score.(u) +. w
                  end)
            end);
        let best = ref (-1) and best_score = ref 0.0 in
        for i = 0 to !n_touched - 1 do
          let u = touched.(i) in
          if score.(u) > !best_score
             || (score.(u) = !best_score && !best >= 0 && u < !best)
          then begin
            best := u;
            best_score := score.(u)
          end
        done;
        let c = !next_cluster in
        incr next_cluster;
        cluster_of.(v) <- c;
        if !best >= 0 then cluster_of.(!best) <- c
      end)
    order;
  (cluster_of, !next_cluster)

(* FirstChoice: the chosen neighbour may already be clustered, so
   clusters grow beyond pairs (bounded by the weight cap). *)
let first_choice ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
    ~skip_nets_above h =
  let n = H.num_vertices h in
  let cluster_of = Array.make n (-1) in
  let cluster_weight = Array.make n 0 in
  let cluster_fixed = Array.make n (-1) in
  let next_cluster = ref 0 in
  let score = Array.make n 0.0 in
  let stamp = Array.make n (-1) in
  let touched = Array.make n 0 in
  let joinable v u =
    u <> v
    && (match restrict_to_parts with
        | None -> true
        | Some part -> part.(v) = part.(u))
    &&
    let target_weight, target_fixed =
      match cluster_of.(u) with
      | -1 -> (H.vertex_weight h u, fixed.(u))
      | c -> (cluster_weight.(c), cluster_fixed.(c))
    in
    H.vertex_weight h v + target_weight <= max_cluster_weight
    && (fixed.(v) < 0 || target_fixed < 0 || fixed.(v) = target_fixed)
  in
  let join v u =
    let c =
      match cluster_of.(u) with
      | -1 ->
        let c = !next_cluster in
        incr next_cluster;
        cluster_of.(u) <- c;
        cluster_weight.(c) <- H.vertex_weight h u;
        cluster_fixed.(c) <- fixed.(u);
        c
      | c -> c
    in
    cluster_of.(v) <- c;
    cluster_weight.(c) <- cluster_weight.(c) + H.vertex_weight h v;
    if fixed.(v) >= 0 then cluster_fixed.(c) <- fixed.(v)
  in
  let order = Rng.permutation rng n in
  Array.iter
    (fun v ->
      if cluster_of.(v) = -1 then begin
        let n_touched = ref 0 in
        H.iter_edges h v (fun e ->
            let size = H.edge_size h e in
            if size <= skip_nets_above then begin
              let w = float_of_int (H.edge_weight h e) /. float_of_int (size - 1) in
              H.iter_pins h e (fun u ->
                  if joinable v u then begin
                    if stamp.(u) <> v then begin
                      stamp.(u) <- v;
                      score.(u) <- 0.0;
                      touched.(!n_touched) <- u;
                      incr n_touched
                    end;
                    score.(u) <- score.(u) +. w
                  end)
            end);
        let best = ref (-1) and best_score = ref 0.0 in
        for i = 0 to !n_touched - 1 do
          let u = touched.(i) in
          if score.(u) > !best_score
             || (score.(u) = !best_score && !best >= 0 && u < !best)
          then begin
            best := u;
            best_score := score.(u)
          end
        done;
        if !best >= 0 then join v !best
        else begin
          let c = !next_cluster in
          incr next_cluster;
          cluster_of.(v) <- c;
          cluster_weight.(c) <- H.vertex_weight h v;
          cluster_fixed.(c) <- fixed.(v)
        end
      end)
    order;
  (cluster_of, !next_cluster)

(* Hyperedge coarsening: contract whole small nets whose pins are all
   still unclustered; leftovers become singletons. *)
let hyperedge_coarsening ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
    ~skip_nets_above h =
  let n = H.num_vertices h in
  let ne = H.num_edges h in
  let cluster_of = Array.make n (-1) in
  let next_cluster = ref 0 in
  (* increasing size, random tie-break (via a shuffled base order) *)
  let order = Rng.permutation rng ne in
  Array.sort (fun a b -> compare (H.edge_size h a) (H.edge_size h b)) order;
  Array.iter
    (fun e ->
      let size = H.edge_size h e in
      if size >= 2 && size <= skip_nets_above then begin
        let all_free = ref true in
        let weight = ref 0 in
        let fixed_side = ref (-1) in
        let part_id = ref min_int in
        H.iter_pins h e (fun v ->
            if cluster_of.(v) <> -1 then all_free := false;
            weight := !weight + H.vertex_weight h v;
            if fixed.(v) >= 0 then
              if !fixed_side = -1 then fixed_side := fixed.(v)
              else if !fixed_side <> fixed.(v) then all_free := false;
            match restrict_to_parts with
            | None -> ()
            | Some part ->
              if !part_id = min_int then part_id := part.(v)
              else if !part_id <> part.(v) then all_free := false);
        if !all_free && !weight <= max_cluster_weight then begin
          let c = !next_cluster in
          incr next_cluster;
          H.iter_pins h e (fun v -> cluster_of.(v) <- c)
        end
      end)
    order;
  for v = 0 to n - 1 do
    if cluster_of.(v) = -1 then begin
      cluster_of.(v) <- !next_cluster;
      incr next_cluster
    end
  done;
  (cluster_of, !next_cluster)

let compute ~scheme ~rng ~max_cluster_weight ~fixed ?restrict_to_parts
    ?(skip_nets_above = 64) h =
  match scheme with
  | Edge_coarsening | Heavy_edge ->
    pair_matching ~scheme ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
      ~skip_nets_above h
  | First_choice ->
    first_choice ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
      ~skip_nets_above h
  | Hyperedge_coarsening ->
    hyperedge_coarsening ~rng ~max_cluster_weight ~fixed ~restrict_to_parts
      ~skip_nets_above h
