(** Vertex matching for one coarsening level.

    Vertices are visited in random order; each unmatched vertex is
    paired with the unmatched neighbour of the highest connectivity
    score, subject to a cluster-weight cap, fixed-side compatibility,
    and (for V-cycling) a same-part restriction.  Unmatched vertices
    become singleton clusters. *)

(** Clustering scheme for one coarsening level:
    - [Edge_coarsening] (hMetis "EC"): pair matching by connectivity
      [sum over shared nets of w(e) / (|e| - 1)] — discounts large nets;
    - [Heavy_edge]: pair matching by plain sum of shared net weights;
    - [First_choice] (hMetis-1.5 "FC"): like [Edge_coarsening], but the
      chosen neighbour may already be clustered — clusters grow beyond
      pairs (subject to the weight cap), giving faster, more aggressive
      coarsening;
    - [Hyperedge_coarsening] (hMetis "HEC"): visit nets in increasing
      size order; a net none of whose pins are clustered yet is
      contracted whole.  Leftover vertices become singletons. *)
type scheme =
  | Edge_coarsening
  | Heavy_edge
  | First_choice
  | Hyperedge_coarsening

val compute :
  scheme:scheme ->
  rng:Hypart_rng.Rng.t ->
  max_cluster_weight:int ->
  fixed:int array ->
  ?restrict_to_parts:int array ->
  ?skip_nets_above:int ->
  Hypart_hypergraph.Hypergraph.t ->
  int array * int
(** [compute ~scheme ~rng ~max_cluster_weight ~fixed h] returns
    [(cluster_of, num_clusters)].  Pairs are only formed when the
    combined weight does not exceed [max_cluster_weight], the two
    vertices are not fixed to different sides, and — when
    [restrict_to_parts] is given — both lie in the same part.  Nets
    larger than [skip_nets_above] (default 64) are ignored when scoring,
    as is standard in multilevel implementations. *)
