(** k-way partitioning by recursive min-cut bisection.

    The paper restricts its study to 2-way partitioners, but the use
    model it motivates (top-down placement, and hMetis's own k-way
    mode) applies them recursively.  This module cuts the vertex set
    into [k] parts by repeatedly bisecting the (induced) subhypergraph
    of each part with the multilevel engine, splitting the part-count
    as evenly as possible (so k need not be a power of two) and the
    balance target proportionally. *)

type result = {
  part_of : int array;  (** vertex -> part id in [0, k) *)
  cut : int;
      (** weighted k-way cut: total weight of nets spanning >= 2 parts *)
  part_weights : int array;
}

val kway_cut : Hypart_hypergraph.Hypergraph.t -> int array -> int
(** Weighted count of nets spanning at least two parts. *)

val run :
  ?config:Ml_partitioner.config ->
  ?tolerance:float ->
  k:int ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  result
(** [run ~k rng h] produces a k-way partitioning.  [tolerance] (default
    0.10) bounds each bisection; the final part weights are within
    roughly [(1 + tolerance)^ceil(log2 k)] of [total / k].
    @raise Invalid_argument when [k < 1] or [k > num_vertices]. *)
