(** Direct k-way FM partitioning (after Sanchis, IEEE ToC 1993).

    The paper restricts its experiments to 2-way partitioners and names
    "the difficulty of multi-way partitioning" a fundamental gap; this
    module provides the direct generalization so that the recursive-
    bisection approach ({!Hypart_multilevel.Recursive_bisection}) has an
    in-repository comparator.

    Every free vertex contributes [k-1] candidate moves (one per target
    part), kept in a single gain-bucket structure keyed by cut
    reduction.  A pass greedily applies the best legal move, locks the
    vertex, updates the affected gains, and finally rolls back to the
    best prefix — exactly the FM discipline, lifted to k parts.

    Complexity per move is O(deg(v) · avg-net-size · k): fine for the
    moderate k (2..16) of VLSI use models, not for graph-clustering k. *)

type result = {
  part_of : int array;
  cut : int;  (** weighted count of nets spanning >= 2 parts *)
  legal : bool;
  passes : int;
  moves : int;
}

val cut_of : Hypart_hypergraph.Hypergraph.t -> int array -> int
(** Weighted k-way cut of an assignment. *)

val run :
  ?max_passes:int ->
  ?tolerance:float ->
  k:int ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  int array ->
  result
(** [run ~k rng h part_of] improves the given assignment (entries in
    [0, k)); each part's weight is constrained to
    [(1 ± tolerance) · total / k] (default tolerance 0.10).  The input
    array is not mutated.
    @raise Invalid_argument on a malformed assignment. *)

val run_random_start :
  ?max_passes:int ->
  ?tolerance:float ->
  k:int ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  result
(** Random balanced start, then {!run}. *)
