(** FM with Krishnamurthy look-ahead gains (IEEE ToC 1984, the paper's
    reference [30]).

    Classic FM breaks ties among maximum-gain moves arbitrarily — one
    of the implicit decisions the paper shows to matter.  Krishnamurthy
    replaced the scalar gain with a {e gain vector} compared
    lexicographically: the r-th component counts nets that would become
    removable in r further moves, via {e binding numbers}.  For a net
    [e] and side [s], the binding number [B_s(e)] is the number of free
    cells of [e] on [s], or infinity if any locked cell of [e] sits on
    [s]; the r-th gain of moving [v] from [A] to [B] is

    [sum over e of w(e) ((B_A(e) = r) - (B_B(e) = r - 1))]

    whose first component is exactly the FM gain.  Components are
    saturated at ±31 and Horner-packed into a single bucket key, so the
    standard gain-bucket machinery applies unchanged.

    Neighbour gains are recomputed from scratch after each move
    (binding numbers are not amenable to cheap deltas), so a move costs
    O(deg² · net size) — this engine is a quality refinement for flat
    partitioning and coarse multilevel levels, not a drop-in
    replacement for the O(pins) classic engine. *)

type result = {
  solution : Hypart_partition.Bipartition.t;
  cut : int;
  legal : bool;
  passes : int;
  moves : int;
}

val run :
  ?lookahead:int ->
  ?max_passes:int ->
  Hypart_rng.Rng.t ->
  Hypart_partition.Problem.t ->
  Hypart_partition.Bipartition.t ->
  result
(** [run rng problem initial] improves [initial]; [lookahead] is the
    gain-vector depth (1 = classic FM ordering, default 2, max 3).
    @raise Invalid_argument for depths outside [1, 3]. *)

val run_random_start :
  ?lookahead:int ->
  ?max_passes:int ->
  Hypart_rng.Rng.t ->
  Hypart_partition.Problem.t ->
  result
