type engine = Lifo_fm | Clip_fm
type insertion_order = Lifo | Fifo | Random
type bias = Away | Part0 | Toward
type update_policy = All_delta_gain | Nonzero_only
type pass_best = First | Last | Most_balanced
type illegal_head = Skip_side | Skip_bucket | Scan_bucket

type t = {
  engine : engine;
  insertion : insertion_order;
  bias : bias;
  update : update_policy;
  pass_best : pass_best;
  illegal_head : illegal_head;
  exclude_oversized : bool;
  boundary_only : bool;
  max_passes : int;
}

let default =
  {
    engine = Lifo_fm;
    insertion = Lifo;
    bias = Away;
    update = Nonzero_only;
    pass_best = Most_balanced;
    illegal_head = Skip_side;
    exclude_oversized = true;
    boundary_only = false;
    max_passes = 100;
  }

let strong_lifo = default

let reported_lifo =
  {
    default with
    insertion = Fifo;
    bias = Part0;
    update = All_delta_gain;
    pass_best = First;
    exclude_oversized = false;
  }

let strong_clip = { default with engine = Clip_fm }
let reported_clip = { reported_lifo with engine = Clip_fm }

let with_bias bias t = { t with bias }
let with_update update t = { t with update }

let describe t =
  let engine = match t.engine with Lifo_fm -> "FM" | Clip_fm -> "CLIP" in
  let ins = match t.insertion with Lifo -> "lifo" | Fifo -> "fifo" | Random -> "rand" in
  let bias = match t.bias with Away -> "away" | Part0 -> "part0" | Toward -> "toward" in
  let upd = match t.update with All_delta_gain -> "alldg" | Nonzero_only -> "nonzero" in
  Printf.sprintf "%s/%s-ins/%s/%s%s" engine ins bias upd
    (if t.exclude_oversized then "" else "/cork")
