(** Configuration of the Fiduccia-Mattheyses engine.

    Every field corresponds to one of the {e implicit implementation
    decisions} the paper identifies (§2.2-2.3): underspecified features
    of the original FM description that any implementation must resolve,
    and whose resolution can swamp the solution-quality effects of
    genuine algorithmic innovation.  Making them explicit configuration
    is the point of this library. *)

(** Gain discipline. *)
type engine =
  | Lifo_fm  (** classic FM: moves keyed by current actual gain *)
  | Clip_fm
      (** CLIP [Dutt & Deng, ICCAD'96]: moves keyed by cumulative delta
          gain (actual gain minus initial gain); every move starts in
          the zero-gain bucket with the highest-initial-gain cells at
          the bucket heads. *)

(** Where a vertex is (re)inserted within its gain bucket.  Hagen,
    Huang & Kahng (EDAC'95) showed LIFO clearly preferable; [Random]
    here is the constant-time approximation that picks head or tail
    with equal probability. *)
type insertion_order = Lifo | Fifo | Random

(** Tie-breaking between the two sides' highest-gain buckets when both
    head moves are legal and have equal gain (§2.2): move [Away] from
    the last moved vertex's source partition, always prefer partition 0
    ([Part0]), or move [Toward] the last source partition.  Before any
    move has been made, partition 0 is used. *)
type bias = Away | Part0 | Toward

(** Whether to reposition a vertex whose delta gain is zero
    ([All_delta_gain] reinserts it, shifting its position within the
    bucket) or to skip the update ([Nonzero_only], leaving the position
    unchanged). *)
type update_policy = All_delta_gain | Nonzero_only

(** Tie-breaking when several prefixes of the move sequence achieve the
    best cut of the pass: take the first one, the last one, or the one
    whose part weights are furthest from violating the balance
    constraint. *)
type pass_best = First | Last | Most_balanced

(** What to do when the head move of a highest-gain bucket is illegal:
    skip all buckets of that partition for this selection
    ([Skip_side]), descend to the next nonempty bucket of the same
    partition ([Skip_bucket]), or walk bucket lists looking for a legal
    move ([Scan_bucket] — the paper finds this too slow and harmful). *)
type illegal_head = Skip_side | Skip_bucket | Scan_bucket

type t = {
  engine : engine;
  insertion : insertion_order;
  bias : bias;
  update : update_policy;
  pass_best : pass_best;
  illegal_head : illegal_head;
  exclude_oversized : bool;
      (** the corking fix: never insert cells whose area exceeds the
          balance slack into the gain structure ("benefits all FM
          variants, and has essentially zero overhead"). *)
  boundary_only : bool;
      (** insert only boundary vertices (those on at least one cut net
          at pass start) into the gain structure — the refinement
          speed-up used by multilevel partitioners such as hMetis.
          Pointless for from-scratch flat runs (a random solution's
          boundary is almost everything); default [false]. *)
  max_passes : int;  (** safety cap on passes per run. *)
}

val default : t
(** Strong settings: LIFO FM, LIFO insertion, [Away] bias,
    [Nonzero_only] updates, [Most_balanced] pass best, [Skip_side],
    oversized cells excluded. *)

val strong_lifo : t
(** "Our LIFO FM" of Tables 1-2. *)

val reported_lifo : t
(** The weak-combination stand-in for the "Reported LIFO FM" baseline of
    Table 2: FIFO insertion, [All_delta_gain] updates, [Part0] bias,
    first-best pass selection, no oversized-cell exclusion. *)

val strong_clip : t
(** "Our CLIP FM" of Tables 1 and 3 (includes the corking fix). *)

val reported_clip : t
(** Weak CLIP: as {!reported_lifo} but with the CLIP engine and no
    corking fix, reproducing the susceptibility described in §2.3. *)

val with_bias : bias -> t -> t
val with_update : update_policy -> t -> t

val describe : t -> string
(** e.g. ["CLIP/LIFO-ins/away/nonzero"]. *)
