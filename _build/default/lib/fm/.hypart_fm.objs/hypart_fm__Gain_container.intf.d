lib/fm/gain_container.mli: Fm_config Hypart_rng
