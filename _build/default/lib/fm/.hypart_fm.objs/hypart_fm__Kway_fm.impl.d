lib/fm/kway_fm.ml: Array Float Fm_config Gain_container Hypart_hypergraph Hypart_rng
