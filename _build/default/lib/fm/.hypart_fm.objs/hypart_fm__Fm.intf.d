lib/fm/fm.mli: Fm_config Hypart_partition Hypart_rng
