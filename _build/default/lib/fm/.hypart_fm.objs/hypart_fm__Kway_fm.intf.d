lib/fm/kway_fm.mli: Hypart_hypergraph Hypart_rng
