lib/fm/lookahead_fm.ml: Array Fm_config Gain_container Hypart_hypergraph Hypart_partition Hypart_rng
