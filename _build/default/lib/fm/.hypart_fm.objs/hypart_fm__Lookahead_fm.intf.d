lib/fm/lookahead_fm.mli: Hypart_partition Hypart_rng
