lib/fm/fm_config.ml: Printf
