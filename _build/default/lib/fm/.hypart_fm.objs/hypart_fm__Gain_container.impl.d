lib/fm/gain_container.ml: Array Fm_config Hypart_rng
