lib/fm/fm_config.mli:
