module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Balance = Hypart_partition.Balance
module Bipartition = Hypart_partition.Bipartition
module Problem = Hypart_partition.Problem
module Initial = Hypart_partition.Initial

type result = {
  solution : Bipartition.t;
  cut : int;
  legal : bool;
  passes : int;
  moves : int;
}

(* gain components saturate at +-clamp; keys are Horner-packed in base
   (2 clamp + 1) so lexicographic order on vectors = integer order on
   keys *)
let clamp = 31
let base = (2 * clamp) + 1

let saturate g = if g > clamp then clamp else if g < -clamp then -clamp else g

type state = {
  h : H.t;
  problem : Problem.t;
  lookahead : int;
  sol : Bipartition.t;
  free_count : int array array;  (* free cells of net e on side s *)
  locked_count : int array array;
  locked : bool array;
  container : Gain_container.t;
  mutable cur_cut : int;
  mutable n_moves : int;
}

(* binding number: free cells on the side, infinity (encoded -1) when a
   locked cell pins the net to that side *)
let binding st side e =
  if st.locked_count.(side).(e) > 0 then -1 else st.free_count.(side).(e)

let gain_vector st v =
  let a = Bipartition.side st.sol v in
  let b = 1 - a in
  let g = Array.make st.lookahead 0 in
  H.iter_edges st.h v (fun e ->
      let w = H.edge_weight st.h e in
      let ba = binding st a e and bb = binding st b e in
      for r = 1 to st.lookahead do
        if ba = r then g.(r - 1) <- g.(r - 1) + w;
        if bb = r - 1 then g.(r - 1) <- g.(r - 1) - w
      done);
  g

let key_of_vector g =
  Array.fold_left (fun acc c -> (acc * base) + saturate c) 0 g

(* the first component is the actual FM gain (cut change) *)
let actual_gain st v = (gain_vector st v).(0)

let max_key lookahead =
  let rec go acc r = if r = 0 then acc else go ((acc * base) + clamp) (r - 1) in
  go 0 lookahead

let recompute_counts st =
  for e = 0 to H.num_edges st.h - 1 do
    st.free_count.(0).(e) <- 0;
    st.free_count.(1).(e) <- 0;
    st.locked_count.(0).(e) <- 0;
    st.locked_count.(1).(e) <- 0
  done;
  for v = 0 to H.num_vertices st.h - 1 do
    let s = Bipartition.side st.sol v in
    let arr = if st.locked.(v) then st.locked_count else st.free_count in
    H.iter_edges st.h v (fun e -> arr.(s).(e) <- arr.(s).(e) + 1)
  done

let insertable st v = Problem.is_free st.problem v && not st.locked.(v)

let insert_vertex st v =
  Gain_container.insert st.container ~side:(Bipartition.side st.sol v)
    ~key:(key_of_vector (gain_vector st v))
    v

let refresh_vertex st v =
  if insertable st v && Gain_container.mem st.container v then begin
    Gain_container.remove st.container v;
    insert_vertex st v
  end

let apply_move st v =
  let a = Bipartition.side st.sol v in
  let b = 1 - a in
  st.cur_cut <- st.cur_cut - actual_gain st v;
  Gain_container.remove st.container v;
  st.locked.(v) <- true;
  H.iter_edges st.h v (fun e ->
      (* v leaves the free pool of A and joins the locked pool of B *)
      st.free_count.(a).(e) <- st.free_count.(a).(e) - 1;
      st.locked_count.(b).(e) <- st.locked_count.(b).(e) + 1);
  Bipartition.move st.sol st.h v;
  (* binding numbers shifted for every net of v: refresh neighbours *)
  H.iter_edges st.h v (fun e -> H.iter_pins st.h e (fun u -> refresh_vertex st u));
  st.n_moves <- st.n_moves + 1

let legal_move st v =
  let bal = st.problem.Problem.balance in
  let w0 = Bipartition.part_weight st.sol 0 in
  let w = H.vertex_weight st.h v in
  let w0' = if Bipartition.side st.sol v = 0 then w0 - w else w0 + w in
  let before = Balance.violation bal ~part0_weight:w0 in
  let after = Balance.violation bal ~part0_weight:w0' in
  if before = 0 then after = 0 else after < before

let pass st =
  Array.fill st.locked 0 (Array.length st.locked) false;
  recompute_counts st;
  Gain_container.clear st.container;
  for v = 0 to H.num_vertices st.h - 1 do
    if insertable st v then insert_vertex st v
  done;
  let moves = ref [] and n_applied = ref 0 in
  let best_cut = ref max_int and best_idx = ref 0 in
  let bal = st.problem.Problem.balance in
  if Balance.is_legal bal ~part0_weight:(Bipartition.part_weight st.sol 0) then begin
    best_cut := st.cur_cut;
    best_idx := 0
  end;
  let continue = ref true in
  while !continue do
    let pick side =
      Gain_container.select st.container ~side ~legal:(legal_move st)
        ~illegal_head:Fm_config.Skip_bucket
    in
    let chosen =
      match (pick 0, pick 1) with
      | None, None -> None
      | Some (v, _), None | None, Some (v, _) -> Some v
      | Some (v0, _), Some (v1, _) ->
        let k0 = Gain_container.key st.container v0
        and k1 = Gain_container.key st.container v1 in
        Some (if k0 >= k1 then v0 else v1)
    in
    match chosen with
    | None -> continue := false
    | Some v ->
      apply_move st v;
      moves := v :: !moves;
      incr n_applied;
      if Balance.is_legal bal ~part0_weight:(Bipartition.part_weight st.sol 0)
         && st.cur_cut < !best_cut
      then begin
        best_cut := st.cur_cut;
        best_idx := !n_applied
      end
  done;
  let undo = if !best_cut = max_int then !n_applied else !n_applied - !best_idx in
  let rec undo_moves k = function
    | v :: rest when k > 0 ->
      Bipartition.move st.sol st.h v;
      undo_moves (k - 1) rest
    | _ -> ()
  in
  undo_moves undo !moves;
  if !best_cut <> max_int then st.cur_cut <- !best_cut
  else st.cur_cut <- Bipartition.cut st.h st.sol;
  (!best_cut, !n_applied)

let run ?(lookahead = 2) ?(max_passes = 50) rng problem initial =
  if lookahead < 1 || lookahead > 3 then
    invalid_arg "Lookahead_fm.run: lookahead must be in [1, 3]";
  let h = problem.Problem.hypergraph in
  let n = H.num_vertices h in
  let st =
    {
      h;
      problem;
      lookahead;
      sol = Bipartition.copy initial;
      free_count = [| Array.make (H.num_edges h) 0; Array.make (H.num_edges h) 0 |];
      locked_count =
        [| Array.make (H.num_edges h) 0; Array.make (H.num_edges h) 0 |];
      locked = Array.make n false;
      container =
        Gain_container.create ~num_vertices:n ~max_key:(max_key lookahead)
          ~insertion:Fm_config.Lifo ~rng;
      cur_cut = 0;
      n_moves = 0;
    }
  in
  st.cur_cut <- Bipartition.cut h st.sol;
  let initial_legal = Bipartition.is_legal st.sol problem.Problem.balance in
  let best = ref (if initial_legal then st.cur_cut else max_int) in
  let passes = ref 0 and improving = ref true in
  while !improving && !passes < max_passes do
    let pass_best, _ = pass st in
    incr passes;
    if pass_best < !best then best := pass_best else improving := false
  done;
  {
    solution = st.sol;
    cut = st.cur_cut;
    legal = Bipartition.is_legal st.sol problem.Problem.balance;
    passes = !passes;
    moves = st.n_moves;
  }

let run_random_start ?lookahead ?max_passes rng problem =
  let initial = Initial.random rng problem in
  run ?lookahead ?max_passes rng problem initial
