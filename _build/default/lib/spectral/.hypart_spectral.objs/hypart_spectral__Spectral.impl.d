lib/spectral/spectral.ml: Array Float Hypart_hypergraph Hypart_partition Hypart_rng List
