lib/spectral/spectral.mli: Hypart_hypergraph Hypart_partition Hypart_rng
