module H = Hypart_hypergraph.Hypergraph
module Clique = Hypart_hypergraph.Clique_expansion
module Rng = Hypart_rng.Rng
module Bipartition = Hypart_partition.Bipartition

type result = {
  solution : Bipartition.t;
  cut : int;
  ratio_cut : float;
  fiedler : float array;
  iterations : int;
}

(* Power iteration on M = c I - L (L = D - W the clique-graph
   Laplacian), deflated against the constant vector, converges to the
   eigenvector of L's second-smallest eigenvalue — the Fiedler
   vector. *)
let fiedler_vector rng ~iterations adj =
  let n = Array.length adj in
  let deg = Clique.degrees adj in
  let c = 1.0 +. Array.fold_left Float.max 0.0 deg in
  let x = Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let y = Array.make n 0.0 in
  let deflate v =
    let mean = Array.fold_left ( +. ) 0.0 v /. float_of_int n in
    Array.map (fun a -> a -. mean) v
  in
  let normalize v =
    let norm = sqrt (Array.fold_left (fun acc a -> acc +. (a *. a)) 0.0 v) in
    if norm > 0.0 then Array.map (fun a -> a /. norm) v else v
  in
  let x = ref (normalize (deflate x)) in
  let used = ref 0 in
  (try
     for it = 1 to iterations do
       used := it;
       (* y = (c I - L) x = (c - deg_v) x_v + sum_u w(u,v) x_u *)
       for v = 0 to n - 1 do
         let acc = ref ((c -. deg.(v)) *. !x.(v)) in
         List.iter (fun (u, w) -> acc := !acc +. (w *. !x.(u))) adj.(v);
         y.(v) <- !acc
       done;
       let next = normalize (deflate (Array.copy y)) in
       (* convergence: direction change below tolerance *)
       let dot = ref 0.0 in
       for v = 0 to n - 1 do
         dot := !dot +. (next.(v) *. !x.(v))
       done;
       x := next;
       if 1.0 -. Float.abs !dot < 1e-10 then raise Exit
     done
   with Exit -> ());
  (!x, !used)

let run ?(iterations = 200) ?(min_part_fraction = 0.05) rng h =
  let n = H.num_vertices h in
  if n < 2 then invalid_arg "Spectral.run: need at least two vertices";
  let adj = Clique.adjacency h in
  let fiedler, used = fiedler_vector rng ~iterations adj in
  (* sweep the Fiedler ordering, maintaining the hyperedge cut
     incrementally: moving vertex v from side 1 to side 0 changes the
     cut by (nets v completes on 0) - (nets v leaves fully on 1) *)
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (fiedler.(a), a) (fiedler.(b), b)) order;
  let count0 = Array.make (H.num_edges h) 0 in
  let cut = ref 0 in
  let total_weight = float_of_int (H.total_vertex_weight h) in
  let w0 = ref 0.0 in
  let best_ratio = ref infinity and best_prefix = ref 0 and best_cut = ref 0 in
  let min_weight = min_part_fraction *. total_weight in
  for i = 0 to n - 2 do
    let v = order.(i) in
    H.iter_edges h v (fun e ->
        let size = H.edge_size h e in
        let before = count0.(e) in
        count0.(e) <- before + 1;
        if before = 0 && size > 1 then cut := !cut + H.edge_weight h e
        else if before + 1 = size && size > 1 then cut := !cut - H.edge_weight h e);
    w0 := !w0 +. float_of_int (H.vertex_weight h v);
    let w1 = total_weight -. !w0 in
    if !w0 >= min_weight && w1 >= min_weight then begin
      let half = total_weight /. 2.0 in
      let ratio = float_of_int !cut *. half *. half /. (!w0 *. w1) in
      if ratio < !best_ratio then begin
        best_ratio := ratio;
        best_prefix := i + 1;
        best_cut := !cut
      end
    end
  done;
  (* fallback when the minimum-fraction window is empty (tiny graphs) *)
  if !best_ratio = infinity then begin
    best_prefix := max 1 (n / 2);
    let side = Array.make n 1 in
    for i = 0 to !best_prefix - 1 do
      side.(order.(i)) <- 0
    done;
    let s = Bipartition.make h side in
    best_cut := Bipartition.cut h s
  end;
  let side = Array.make n 1 in
  for i = 0 to !best_prefix - 1 do
    side.(order.(i)) <- 0
  done;
  let solution = Bipartition.make h side in
  let cut = Bipartition.cut h solution in
  {
    solution;
    cut;
    ratio_cut =
      (let w0 = float_of_int (Bipartition.part_weight solution 0) in
       let w1 = float_of_int (Bipartition.part_weight solution 1) in
       let half = total_weight /. 2.0 in
       if w0 = 0.0 || w1 = 0.0 then infinity
       else float_of_int cut *. half *. half /. (w0 *. w1));
    fiedler;
    iterations = used;
  }
