(** Spectral ratio-cut bipartitioning (EIG1; Wei & Cheng's ratio-cut
    objective with Hagen & Kahng's eigenvector relaxation).

    The hypergraph is clique-expanded; the Fiedler vector (second
    eigenvector of the graph Laplacian) is computed by deflated power
    iteration; vertices are sorted by their Fiedler coordinate and
    every split point of the linear ordering is swept, keeping the one
    with the best ratio cut.  No balance constraint: the ratio-cut
    objective itself discourages lopsided splits — which is exactly the
    formulation difference the paper's intro lists against cut size.

    This is one of the non-FM baselines of the partitioning literature
    the paper's experiments sit in, provided for contrast in examples
    and benches.  Dense-matrix-free: O(iterations . edges). *)

type result = {
  solution : Hypart_partition.Bipartition.t;
  cut : int;  (** hyperedge cut of the chosen split *)
  ratio_cut : float;  (** the optimized objective *)
  fiedler : float array;  (** the eigenvector (test/diagnostic hook) *)
  iterations : int;  (** power iterations used *)
}

val run :
  ?iterations:int ->
  ?min_part_fraction:float ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  result
(** [run rng h] computes the EIG1 bipartition.  [iterations] caps the
    power iteration (default 200, with early exit on convergence);
    [min_part_fraction] (default 0.05) keeps degenerate prefixes out of
    the sweep.  @raise Invalid_argument on hypergraphs with fewer than
    two vertices. *)
