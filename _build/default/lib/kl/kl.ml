module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Bipartition = Hypart_partition.Bipartition

type result = {
  solution : Bipartition.t;
  cut : int;
  passes : int;
  swaps : int;
}

let clique_adjacency h = Hypart_hypergraph.Clique_expansion.adjacency h

let run ?(max_passes = 20) _rng h initial =
  let n = H.num_vertices h in
  let side = Bipartition.assignment initial in
  let n0 = Array.fold_left (fun acc s -> if s = 0 then acc + 1 else acc) 0 side in
  if abs ((2 * n0) - n) > 1 then
    invalid_arg "Kl.run: initial solution must be an equal-cardinality bisection";
  let adj = clique_adjacency h in
  let c a b =
    (* connection weight between a and b *)
    List.fold_left (fun acc (u, w) -> if u = b then acc +. w else acc) 0.0 adj.(a)
  in
  (* D(v) = external - internal clique cost *)
  let d = Array.make n 0.0 in
  let compute_d () =
    for v = 0 to n - 1 do
      d.(v) <-
        List.fold_left
          (fun acc (u, w) -> if side.(u) <> side.(v) then acc +. w else acc -. w)
          0.0 adj.(v)
    done
  in
  let locked = Array.make n false in
  let total_swaps = ref 0 in
  let passes = ref 0 in
  let improving = ref true in
  while !improving && !passes < max_passes do
    incr passes;
    Array.fill locked 0 n false;
    compute_d ();
    (* tentative swap sequence *)
    let seq = ref [] and gains = ref [] in
    let continue = ref true in
    while !continue do
      (* best unlocked pair (a in P0, b in P1) maximizing
         D(a) + D(b) - 2 c(a,b) *)
      let best = ref None in
      for a = 0 to n - 1 do
        if (not locked.(a)) && side.(a) = 0 then
          for b = 0 to n - 1 do
            if (not locked.(b)) && side.(b) = 1 then begin
              let g = d.(a) +. d.(b) -. (2.0 *. c a b) in
              match !best with
              | Some (_, _, bg) when bg >= g -> ()
              | _ -> best := Some (a, b, g)
            end
          done
      done;
      match !best with
      | None -> continue := false
      | Some (a, b, g) ->
        locked.(a) <- true;
        locked.(b) <- true;
        side.(a) <- 1;
        side.(b) <- 0;
        incr total_swaps;
        (* update D for unlocked vertices *)
        List.iter
          (fun (u, w) ->
            if not locked.(u) then
              d.(u) <- (if side.(u) = 1 then d.(u) -. (2.0 *. w) else d.(u) +. (2.0 *. w)))
          adj.(a);
        List.iter
          (fun (u, w) ->
            if not locked.(u) then
              d.(u) <- (if side.(u) = 0 then d.(u) -. (2.0 *. w) else d.(u) +. (2.0 *. w)))
          adj.(b);
        seq := (a, b) :: !seq;
        gains := g :: !gains
    done;
    (* best prefix by cumulative gain *)
    let gains = Array.of_list (List.rev !gains) in
    let best_k = ref 0 and cum = ref 0.0 and best_cum = ref 0.0 in
    Array.iteri
      (fun i g ->
        cum := !cum +. g;
        if !cum > !best_cum +. 1e-9 then begin
          best_cum := !cum;
          best_k := i + 1
        end)
      gains;
    let best_k = !best_k in
    (* roll back swaps after the best prefix *)
    let seq = Array.of_list (List.rev !seq) in
    for i = Array.length seq - 1 downto best_k do
      let a, b = seq.(i) in
      side.(a) <- 0;
      side.(b) <- 1
    done;
    if best_k = 0 then improving := false
  done;
  let solution = Bipartition.make h side in
  { solution; cut = Bipartition.cut h solution; passes = !passes; swaps = !total_swaps }

let run_random_start ?max_passes rng h =
  let n = H.num_vertices h in
  let perm = Rng.permutation rng n in
  let side = Array.make n 1 in
  for i = 0 to (n / 2) - 1 do
    side.(perm.(i)) <- 0
  done;
  run ?max_passes rng h (Bipartition.make h side)
