(** Kernighan-Lin pair-swap bipartitioning (Bell System Tech. J., 1970).

    The historical baseline that FM improved on.  Hyperedges are clique-
    expanded with weight [w(e) / (|e| - 1)] per pair; passes tentatively
    swap the best unlocked pair until all vertices are locked, then roll
    back to the best prefix.  Pair swaps preserve vertex counts, so KL
    maintains an equal-cardinality (unit-area) bisection — the regime
    the paper notes older benchmarks were run in.  O(n^2) per pass:
    suitable for baselines and examples, not for production use. *)

type result = {
  solution : Hypart_partition.Bipartition.t;
  cut : int;  (** hyperedge cut of [solution] (not the clique-model cost) *)
  passes : int;
  swaps : int;  (** total swaps applied, including rolled-back ones *)
}

val run :
  ?max_passes:int ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  Hypart_partition.Bipartition.t ->
  result
(** Improve an initial solution (counts on each side must differ by at
    most one; weights are ignored).  @raise Invalid_argument otherwise. *)

val run_random_start :
  ?max_passes:int ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  result
(** Random equal-cardinality start, then {!run}. *)
