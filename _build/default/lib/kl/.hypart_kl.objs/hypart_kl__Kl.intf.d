lib/kl/kl.mli: Hypart_hypergraph Hypart_partition Hypart_rng
