lib/kl/kl.ml: Array Hypart_hypergraph Hypart_partition Hypart_rng List
