module H = Hypart_hypergraph.Hypergraph

type t = { hypergraph : H.t; balance : Balance.t; fixed : int array }

let checked_fixed fixed n =
  match fixed with
  | None -> Array.make n (-1)
  | Some f ->
    if Array.length f <> n then invalid_arg "Problem: fixed length mismatch";
    Array.iter
      (fun s ->
        if s < -1 || s > 1 then
          invalid_arg "Problem: fixed side must be -1, 0 or 1")
      f;
    Array.copy f

let with_balance ?fixed balance h =
  if H.total_vertex_weight h <> balance.Balance.total then
    invalid_arg "Problem.with_balance: total weight mismatch";
  { hypergraph = h; balance; fixed = checked_fixed fixed (H.num_vertices h) }

let make ?fixed ?fraction ~tolerance h =
  let fixed = checked_fixed fixed (H.num_vertices h) in
  let total = H.total_vertex_weight h in
  let balance =
    match fraction with
    | None -> Balance.of_tolerance ~total ~tolerance
    | Some fraction -> Balance.of_fraction ~total ~fraction ~tolerance
  in
  { hypergraph = h; balance; fixed }

let num_fixed p =
  Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 p.fixed

let is_free p v = p.fixed.(v) < 0

let fixed_weight p side =
  let total = ref 0 in
  Array.iteri
    (fun v s -> if s = side then total := !total + H.vertex_weight p.hypergraph v)
    p.fixed;
  !total
