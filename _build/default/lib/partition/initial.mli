(** Initial solution generation.

    Hauck & Borriello (cited in §2.2) showed that initial solution
    generation is one of the hidden implementation decisions that move
    results; both generators here are exposed so experiments can vary
    them. *)

val random : Hypart_rng.Rng.t -> Problem.t -> Bipartition.t
(** Vertices are visited in random order and assigned a uniformly
    random side unless that would overflow the balance upper bound, in
    which case the lighter side is used.  Fixed vertices go to their
    prescribed side.  The result is legal whenever a legal assignment
    exists for the visit order (large macros are placed first to avoid
    dead ends). *)

val area_levelled : Hypart_rng.Rng.t -> Problem.t -> Bipartition.t
(** Longest-processing-time style: vertices in decreasing area order,
    each to the currently lighter side (random tie-break).  Produces
    very tight balance; used at the coarsest multilevel level. *)

val cluster_grown : Hypart_rng.Rng.t -> Problem.t -> Bipartition.t
(** Greedy region growth from a random seed: side 0 repeatedly absorbs
    the unplaced vertex sharing the most (small) nets with the region,
    until the balance target is reached; the rest goes to side 1.
    Produces far lower initial cuts than {!random} — the kind of
    "smart" initial generator whose effect Hauck & Borriello
    quantified.  Fixed vertices keep their side. *)
