(** Partitioning objective functions.

    Cut size is the standard objective (and the one the FM engine
    optimizes); the others are the alternatives the paper's introduction
    cites — ratio cut [Wei & Cheng 1989], scaled cost [Chan, Schlag &
    Zien 1994] and absorption [Sun & Sechen 1993] — provided for
    evaluation and for the example applications. *)

type t = Cut | Ratio_cut | Scaled_cost | Absorption

val name : t -> string

val evaluate : t -> Hypart_hypergraph.Hypergraph.t -> Bipartition.t -> float
(** Evaluate an objective; lower is better for [Cut], [Ratio_cut] and
    [Scaled_cost], higher is better for [Absorption] (see {!direction}). *)

val direction : t -> [ `Minimize | `Maximize ]

val cut : Hypart_hypergraph.Hypergraph.t -> Bipartition.t -> int
(** Weighted cut size (same as {!Bipartition.cut}). *)

val ratio_cut : Hypart_hypergraph.Hypergraph.t -> Bipartition.t -> float
(** [cut / (w(P0) * w(P1))], scaled by the squared half-total so that
    perfectly balanced solutions have ratio cut equal to the cut. *)

val scaled_cost : Hypart_hypergraph.Hypergraph.t -> Bipartition.t -> float
(** [(1/(n(k-1))) * sum_i cut / w(P_i)] with [k = 2]. *)

val absorption : Hypart_hypergraph.Hypergraph.t -> Bipartition.t -> float
(** Sum over nets and parts of [(pins in part - 1) / (net size - 1)];
    totally absorbed designs score [num_edges]. *)
