module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng

(* Shared assignment loop: visit free vertices in [order]; heavy cells
   (area above the balance slack) are placed first so that random
   placement of small cells cannot strand a macro with no legal side. *)
let assign rng problem ~order ~pick =
  let h = problem.Problem.hypergraph in
  let balance = problem.Problem.balance in
  let n = H.num_vertices h in
  let side = Array.make n 0 in
  let weight = [| 0; 0 |] in
  let place v s =
    side.(v) <- s;
    weight.(s) <- weight.(s) + H.vertex_weight h v
  in
  Array.iteri (fun v s -> if s >= 0 then place v s) problem.Problem.fixed;
  let slack = Balance.slack balance in
  let heavy, light =
    Array.to_list order
    |> List.filter (fun v -> Problem.is_free problem v)
    |> List.partition (fun v -> H.vertex_weight h v > slack)
  in
  let heavy = List.sort (fun a b -> compare (H.vertex_weight h b) (H.vertex_weight h a)) heavy in
  (* aim at the centre of the balance window, which may be asymmetric
     (recursive bisection into uneven part counts) *)
  let target0 = (balance.Balance.lower + balance.Balance.upper) / 2 in
  let target1 = balance.Balance.total - target0 in
  let lighter () =
    let deficit0 = target0 - weight.(0) and deficit1 = target1 - weight.(1) in
    if deficit0 >= deficit1 then 0 else 1
  in
  List.iter (fun v -> place v (lighter ())) heavy;
  List.iter
    (fun v ->
      let w = H.vertex_weight h v in
      let s = pick rng weight w in
      place v s)
    light;
  Bipartition.make h side

let random rng problem =
  let n = H.num_vertices problem.Problem.hypergraph in
  let order = Rng.permutation rng n in
  let balance = problem.Problem.balance in
  (* per-side caps; part 1's cap is the complement of part 0's floor *)
  let cap = [| balance.Balance.upper; balance.Balance.total - balance.Balance.lower |] in
  let target0 = (balance.Balance.lower + balance.Balance.upper) / 2 in
  let target = [| target0; balance.Balance.total - target0 |] in
  let pick rng weight w =
    let s = if Rng.bool rng then 0 else 1 in
    if weight.(s) + w <= cap.(s) then s
    else if weight.(1 - s) + w <= cap.(1 - s) then 1 - s
    else if target.(0) - weight.(0) >= target.(1) - weight.(1) then 0
    else 1
  in
  assign rng problem ~order ~pick

(* Intrusive bucket priority over vertices keyed by region
   connectivity; keys are bounded by vertex degree, so an array of
   bucket heads with a decaying max pointer gives O(1) operations. *)
module Conn_buckets = struct
  type t = {
    prev : int array;
    next : int array;
    key : int array;
    head : int array;
    mutable max : int;
  }

  let absent = -2
  let nil = -1

  let create n max_key =
    {
      prev = Array.make n absent;
      next = Array.make n absent;
      key = Array.make n 0;
      head = Array.make (max_key + 1) nil;
      max = 0;
    }

  let mem t v = t.prev.(v) <> absent

  let insert t v k =
    t.key.(v) <- k;
    t.prev.(v) <- nil;
    t.next.(v) <- t.head.(k);
    if t.head.(k) <> nil then t.prev.(t.head.(k)) <- v;
    t.head.(k) <- v;
    if k > t.max then t.max <- k

  let remove t v =
    if mem t v then begin
      let p = t.prev.(v) and n = t.next.(v) in
      if p <> nil then t.next.(p) <- n else t.head.(t.key.(v)) <- n;
      if n <> nil then t.prev.(n) <- p;
      t.prev.(v) <- absent;
      t.next.(v) <- absent
    end

  let increment t v =
    if mem t v then begin
      let k = t.key.(v) + 1 in
      remove t v;
      insert t v k
    end

  (* pop the best vertex accepted by [keep]; rejected ones are removed *)
  let rec pop_best t ~keep =
    while t.max > 0 && t.head.(t.max) = nil do
      t.max <- t.max - 1
    done;
    let v = t.head.(t.max) in
    if v = nil then None
    else begin
      remove t v;
      if keep v then Some v else pop_best t ~keep
    end
end

let cluster_grown rng problem =
  let h = problem.Problem.hypergraph in
  let balance = problem.Problem.balance in
  let n = H.num_vertices h in
  let side = Array.make n 1 in
  let weight0 = ref 0 in
  let target0 = (balance.Balance.lower + balance.Balance.upper) / 2 in
  let buckets = Conn_buckets.create n (max 1 (H.max_vertex_degree h)) in
  let net_counted = Array.make (max 1 (H.num_edges h)) false in
  let placed = Array.make n false in
  let place0 v =
    side.(v) <- 0;
    placed.(v) <- true;
    weight0 := !weight0 + H.vertex_weight h v;
    Conn_buckets.remove buckets v;
    (* first placement on a (small) net raises the connectivity of its
       other pins; huge clock-like nets carry no locality signal *)
    H.iter_edges h v (fun e ->
        if (not net_counted.(e)) && H.edge_size h e <= 32 then begin
          net_counted.(e) <- true;
          H.iter_pins h e (fun u ->
              if (not placed.(u)) && Conn_buckets.mem buckets u then
                Conn_buckets.increment buckets u)
        end)
  in
  (* candidates: free vertices (fixed ones keep their side) *)
  for v = 0 to n - 1 do
    if Problem.is_free problem v then Conn_buckets.insert buckets v 0
  done;
  Array.iteri
    (fun v s ->
      if s = 0 then place0 v else if s = 1 then placed.(v) <- true)
    problem.Problem.fixed;
  (* random seed: bias the argmax by seeding one random vertex at key 1 *)
  let seed = Rng.int rng n in
  if Conn_buckets.mem buckets seed then Conn_buckets.increment buckets seed;
  let continue = ref true in
  while !continue && !weight0 < target0 do
    let keep v = !weight0 + H.vertex_weight h v <= balance.Balance.upper in
    match Conn_buckets.pop_best buckets ~keep with
    | Some v -> place0 v
    | None -> continue := false
  done;
  Bipartition.make h side

let area_levelled rng problem =
  let h = problem.Problem.hypergraph in
  let n = H.num_vertices h in
  let order = Rng.permutation rng n in
  (* stable sort on the random permutation: decreasing area with random
     tie-break *)
  Array.sort
    (fun a b -> compare (H.vertex_weight h b) (H.vertex_weight h a))
    order;
  let pick _rng weight _w = if weight.(0) <= weight.(1) then 0 else 1 in
  assign rng problem ~order ~pick
