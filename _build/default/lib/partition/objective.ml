module H = Hypart_hypergraph.Hypergraph

type t = Cut | Ratio_cut | Scaled_cost | Absorption

let name = function
  | Cut -> "cut"
  | Ratio_cut -> "ratio-cut"
  | Scaled_cost -> "scaled-cost"
  | Absorption -> "absorption"

let direction = function
  | Cut | Ratio_cut | Scaled_cost -> `Minimize
  | Absorption -> `Maximize

let cut = Bipartition.cut

let ratio_cut h s =
  let c = float_of_int (cut h s) in
  let w0 = float_of_int (Bipartition.part_weight s 0) in
  let w1 = float_of_int (Bipartition.part_weight s 1) in
  if w0 = 0. || w1 = 0. then infinity
  else
    let half = float_of_int (H.total_vertex_weight h) /. 2. in
    c *. half *. half /. (w0 *. w1)

let scaled_cost h s =
  let c = float_of_int (cut h s) in
  let n = float_of_int (H.num_vertices h) in
  let w0 = float_of_int (Bipartition.part_weight s 0) in
  let w1 = float_of_int (Bipartition.part_weight s 1) in
  if w0 = 0. || w1 = 0. then infinity
  else c /. n *. ((1. /. w0) +. (1. /. w1))

let absorption h s =
  let total = ref 0.0 in
  for e = 0 to H.num_edges h - 1 do
    let size = H.edge_size h e in
    if size >= 2 then begin
      let c0, c1 = Bipartition.pins_on_side h s e in
      let denom = float_of_int (size - 1) in
      let add c = if c > 0 then total := !total +. (float_of_int (c - 1) /. denom) in
      add c0;
      add c1
    end
  done;
  !total

let evaluate obj h s =
  match obj with
  | Cut -> float_of_int (cut h s)
  | Ratio_cut -> ratio_cut h s
  | Scaled_cost -> scaled_cost h s
  | Absorption -> absorption h s
