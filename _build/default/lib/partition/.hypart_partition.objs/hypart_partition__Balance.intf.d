lib/partition/balance.mli: Format
