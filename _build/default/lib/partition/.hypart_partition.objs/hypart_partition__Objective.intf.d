lib/partition/objective.mli: Bipartition Hypart_hypergraph
