lib/partition/problem.ml: Array Balance Hypart_hypergraph
