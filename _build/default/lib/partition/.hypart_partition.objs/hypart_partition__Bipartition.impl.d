lib/partition/bipartition.ml: Array Balance Hypart_hypergraph
