lib/partition/kway_objective.mli: Hypart_hypergraph
