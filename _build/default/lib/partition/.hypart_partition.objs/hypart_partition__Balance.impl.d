lib/partition/balance.ml: Float Format
