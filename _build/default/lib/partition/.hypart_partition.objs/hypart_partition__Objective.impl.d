lib/partition/objective.ml: Bipartition Hypart_hypergraph
