lib/partition/kway_objective.ml: Array Hypart_hypergraph List
