lib/partition/initial.mli: Bipartition Hypart_rng Problem
