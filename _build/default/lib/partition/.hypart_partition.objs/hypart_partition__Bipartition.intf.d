lib/partition/bipartition.mli: Balance Hypart_hypergraph
