lib/partition/problem.mli: Balance Hypart_hypergraph
