lib/partition/initial.ml: Array Balance Bipartition Hypart_hypergraph Hypart_rng List Problem
