type t = { lower : int; upper : int; total : int; tolerance : float }

let check_common ~total ~tolerance =
  if total <= 0 then invalid_arg "Balance: non-positive total";
  if tolerance < 0.0 || tolerance >= 1.0 then
    invalid_arg "Balance: tolerance must be in [0, 1)"

let of_tolerance ~total ~tolerance =
  check_common ~total ~tolerance;
  let w = float_of_int total in
  (* complementary bounds: upper = total - lower, so an exact bisection
     of an odd total (floor/ceil halves) is always legal *)
  let lower = int_of_float (Float.floor ((0.5 -. (tolerance /. 2.)) *. w)) in
  let lower = min lower (total / 2) in
  { lower; upper = total - lower; total; tolerance }

let of_fraction ~total ~fraction ~tolerance =
  check_common ~total ~tolerance;
  if fraction <= 0.0 || fraction >= 1.0 then
    invalid_arg "Balance.of_fraction: fraction must be in (0, 1)";
  let w = float_of_int total in
  let lower = int_of_float (Float.floor ((fraction -. (tolerance /. 2.)) *. w)) in
  let upper = int_of_float (Float.ceil ((fraction +. (tolerance /. 2.)) *. w)) in
  let lower = max 0 lower and upper = min total upper in
  (* the target weight itself must always be feasible *)
  let target = int_of_float (Float.round (fraction *. w)) in
  { lower = min lower target; upper = max upper target; total; tolerance }

let is_legal b ~part0_weight = part0_weight >= b.lower && part0_weight <= b.upper

let move_is_legal b ~part0_weight ~weight ~from_side =
  let w0 = if from_side = 0 then part0_weight - weight else part0_weight + weight in
  is_legal b ~part0_weight:w0

let slack b = b.upper - b.lower

let violation b ~part0_weight =
  if part0_weight < b.lower then b.lower - part0_weight
  else if part0_weight > b.upper then part0_weight - b.upper
  else 0

let pp ppf b =
  Format.fprintf ppf "balance: part 0 in [%d, %d] of %d (tol %.0f%%)" b.lower
    b.upper b.total (100. *. b.tolerance)
