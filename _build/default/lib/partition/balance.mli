(** Balance constraints for bipartitioning.

    The paper's convention: a tolerance of 2% constrains each partition
    to hold between 49% and 51% of the total cell area; 10% means 45% to
    55%.  For a bipartition with total weight [W] and tolerance [t],
    each part must weigh within [[(0.5 - t/2) W, (0.5 + t/2) W]];
    bounds are rounded outward so that exact bisection of an odd total
    remains feasible. *)

type t = private {
  lower : int;  (** minimum legal part-0 weight *)
  upper : int;  (** maximum legal part-0 weight *)
  total : int;
  tolerance : float;
}

val of_tolerance : total:int -> tolerance:float -> t
(** Symmetric bounds: part 0 within [[(0.5 - t/2) W, (0.5 + t/2) W]]
    (and part 1 by complement).  Bounds are complements of each other
    ([upper = total - lower]), so exact bisection of an odd total is
    always feasible.  @raise Invalid_argument if [tolerance] is outside
    [0, 1) or [total] is non-positive. *)

val of_fraction : total:int -> fraction:float -> tolerance:float -> t
(** Asymmetric bounds for uneven splits (recursive bisection into an
    odd number of parts): part 0 within
    [[(f - t/2) W, (f + t/2) W]], clamped to [[0, W]].
    @raise Invalid_argument if [fraction] is outside (0, 1). *)

val is_legal : t -> part0_weight:int -> bool
(** Part 0 within bounds (part 1 is bounded by complement). *)

val move_is_legal : t -> part0_weight:int -> weight:int -> from_side:int -> bool
(** Would moving a vertex of [weight] out of [from_side] keep the
    solution legal? *)

val slack : t -> int
(** [upper - lower]: the width of the legal window.  A cell heavier than
    this can never move in a legal solution — the corking threshold. *)

val violation : t -> part0_weight:int -> int
(** Distance to the legal window (0 when legal).  Used to pick the
    "furthest from violating" pass-best tie-break and to rank imbalanced
    intermediate solutions. *)

val pp : Format.formatter -> t -> unit
