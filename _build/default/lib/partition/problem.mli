(** A bipartitioning problem instance: hypergraph, balance constraint
    and (optionally) fixed vertices.

    Fixed vertices model terminal propagation and pad locations in
    top-down placement — the paper (§2.1) notes that "almost all
    hypergraph partitioning instances have many vertices fixed in
    partitions".  A fixed vertex never moves and is never inserted into
    gain structures. *)

type t = private {
  hypergraph : Hypart_hypergraph.Hypergraph.t;
  balance : Balance.t;
  fixed : int array;  (** [-1] = free, [0]/[1] = fixed to that side *)
}

val make :
  ?fixed:int array ->
  ?fraction:float ->
  tolerance:float ->
  Hypart_hypergraph.Hypergraph.t ->
  t
(** [make ~tolerance h] builds a problem with the paper's balance
    convention (see {!Balance.of_tolerance}); with [fraction] the
    asymmetric convention {!Balance.of_fraction} is used instead (for
    recursive bisection into uneven part counts).  [fixed] defaults to
    all free.  @raise Invalid_argument on malformed [fixed]. *)

val with_balance :
  ?fixed:int array ->
  Balance.t ->
  Hypart_hypergraph.Hypergraph.t ->
  t
(** Wrap a hypergraph with an existing balance constraint — used by the
    multilevel engine, where every level of the hierarchy shares the
    finest level's (possibly asymmetric) window.  @raise
    Invalid_argument if the hypergraph's total weight disagrees with
    the constraint's. *)

val num_fixed : t -> int
val is_free : t -> int -> bool

val fixed_weight : t -> int -> int
(** Total weight fixed to the given side. *)
