(** Detailed placement: row legalization and stochastic hill-climbing.

    The paper's use model (§2.1): a placement tool derives a "coarse
    placement" by recursive min-cut bisection, "which is then refined
    into a detailed placement by stochastic hill-climbing search"; its
    footnote 8 notes that the "discrete nature of cell rows" requires
    snapping into row-compatible positions.  This module provides both
    steps on top of {!Topdown}:

    - {!legalize} snaps a coarse placement onto standard-cell rows:
      cells are assigned to the nearest row (capacity-limited by total
      cell width per row) and packed left-to-right in x-order;
    - {!anneal} improves half-perimeter wirelength by simulated
      annealing over pairwise cell swaps (within and across rows), with
      a geometric cooling schedule.

    The row model is slot-based: each row holds equally-pitched slots
    and every cell occupies exactly one, so swaps always preserve
    legality.  Macros therefore occupy a single slot — area-accurate
    widths are traded for O(degree) move evaluation, the standard
    teaching abstraction of TimberWolf-style annealers; the coarse
    placer ({!Topdown}) remains the area-accurate stage. *)

type rows = {
  num_rows : int;
  row_height : float;
  row_of : int array;  (** row index per cell *)
}

type legalized = {
  placement : Topdown.placement;
  rows : rows;
}

val legalize :
  ?num_rows:int ->
  Hypart_hypergraph.Hypergraph.t ->
  Topdown.placement ->
  legalized
(** Snap to rows: cells are distributed over rows by y-order (equal
    count per row) and packed into slots in x-order.  [num_rows]
    defaults to about [sqrt] of the cell count (square-ish aspect). *)

type anneal_stats = {
  initial_hpwl : float;
  final_hpwl : float;
  accepted : int;
  attempted : int;
}

val anneal :
  ?moves_per_cell:int ->
  ?initial_acceptance:float ->
  ?cooling:float ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  legalized ->
  legalized * anneal_stats
(** Simulated-annealing refinement.  [moves_per_cell] (default 50)
    scales the move budget; [initial_acceptance] (default 0.5) sets the
    starting temperature from sampled move deltas; [cooling] (default
    0.95) is the geometric factor per temperature step.  Never returns
    a placement with a worse HPWL than its input (the best-seen
    configuration is kept). *)
