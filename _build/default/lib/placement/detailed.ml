module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng

type rows = { num_rows : int; row_height : float; row_of : int array }
type legalized = { placement : Topdown.placement; rows : rows }

type anneal_stats = {
  initial_hpwl : float;
  final_hpwl : float;
  accepted : int;
  attempted : int;
}

let legalize ?num_rows h pl =
  let n = H.num_vertices h in
  if n = 0 then
    {
      placement = pl;
      rows = { num_rows = 0; row_height = 0.0; row_of = [||] };
    }
  else begin
    let num_rows =
      match num_rows with
      | Some r ->
        if r < 1 then invalid_arg "Detailed.legalize: num_rows must be >= 1";
        min r n
      | None -> max 1 (int_of_float (sqrt (float_of_int n)))
    in
    let row_height = pl.Topdown.height /. float_of_int num_rows in
    (* distribute cells over rows by y-order, equal count per row *)
    let by_y = Array.init n (fun v -> v) in
    Array.sort
      (fun a b -> compare (pl.Topdown.y.(a), a) (pl.Topdown.y.(b), b))
      by_y;
    let row_of = Array.make n 0 in
    (* proportional assignment keeps row populations within one cell *)
    Array.iteri (fun i v -> row_of.(v) <- i * num_rows / n) by_y;
    (* pack each row into uniformly pitched slots, preserving x-order *)
    let x = Array.make n 0.0 and y = Array.make n 0.0 in
    for r = 0 to num_rows - 1 do
      let members =
        Array.of_list
          (List.filter (fun v -> row_of.(v) = r) (Array.to_list by_y))
      in
      Array.sort
        (fun a b -> compare (pl.Topdown.x.(a), a) (pl.Topdown.x.(b), b))
        members;
      let k = Array.length members in
      let pitch = pl.Topdown.width /. float_of_int (max 1 k) in
      Array.iteri
        (fun s v ->
          x.(v) <- (float_of_int s +. 0.5) *. pitch;
          y.(v) <- (float_of_int r +. 0.5) *. row_height)
        members
    done;
    {
      placement =
        { Topdown.x; y; width = pl.Topdown.width; height = pl.Topdown.height };
      rows = { num_rows; row_height; row_of };
    }
  end

(* HPWL of the nets incident to [v] (and optionally [u]), used for swap
   deltas without rescanning the whole netlist.  Nets shared by both
   cells are counted once via a stamp. *)
let local_hpwl h pl ~stamp ~serial vs =
  let total = ref 0.0 in
  List.iter
    (fun v ->
      H.iter_edges h v (fun e ->
          if stamp.(e) <> serial then begin
            stamp.(e) <- serial;
            if H.edge_size h e >= 2 then begin
              let min_x = ref infinity and max_x = ref neg_infinity in
              let min_y = ref infinity and max_y = ref neg_infinity in
              H.iter_pins h e (fun u ->
                  if pl.Topdown.x.(u) < !min_x then min_x := pl.Topdown.x.(u);
                  if pl.Topdown.x.(u) > !max_x then max_x := pl.Topdown.x.(u);
                  if pl.Topdown.y.(u) < !min_y then min_y := pl.Topdown.y.(u);
                  if pl.Topdown.y.(u) > !max_y then max_y := pl.Topdown.y.(u));
              total :=
                !total
                +. (float_of_int (H.edge_weight h e)
                    *. (!max_x -. !min_x +. (!max_y -. !min_y)))
            end
          end))
    vs;
  !total

let swap_coords pl rows a b =
  let tx = pl.Topdown.x.(a) and ty = pl.Topdown.y.(a) in
  pl.Topdown.x.(a) <- pl.Topdown.x.(b);
  pl.Topdown.y.(a) <- pl.Topdown.y.(b);
  pl.Topdown.x.(b) <- tx;
  pl.Topdown.y.(b) <- ty;
  let tr = rows.row_of.(a) in
  rows.row_of.(a) <- rows.row_of.(b);
  rows.row_of.(b) <- tr

let anneal ?(moves_per_cell = 50) ?(initial_acceptance = 0.5) ?(cooling = 0.95)
    rng h legalized =
  let n = H.num_vertices h in
  if initial_acceptance <= 0.0 || initial_acceptance >= 1.0 then
    invalid_arg "Detailed.anneal: initial_acceptance outside (0, 1)";
  if cooling <= 0.0 || cooling >= 1.0 then
    invalid_arg "Detailed.anneal: cooling outside (0, 1)";
  let pl =
    {
      Topdown.x = Array.copy legalized.placement.Topdown.x;
      y = Array.copy legalized.placement.Topdown.y;
      width = legalized.placement.Topdown.width;
      height = legalized.placement.Topdown.height;
    }
  in
  let rows = { legalized.rows with row_of = Array.copy legalized.rows.row_of } in
  let stats_zero = { initial_hpwl = 0.; final_hpwl = 0.; accepted = 0; attempted = 0 } in
  if n < 2 then ({ placement = pl; rows }, stats_zero)
  else begin
    let stamp = Array.make (max 1 (H.num_edges h)) (-1) in
    let serial = ref 0 in
    let delta_of_swap a b =
      incr serial;
      let before = local_hpwl h pl ~stamp ~serial:!serial [ a; b ] in
      swap_coords pl rows a b;
      incr serial;
      let after = local_hpwl h pl ~stamp ~serial:!serial [ a; b ] in
      swap_coords pl rows a b;
      after -. before
    in
    (* starting temperature from sampled deltas *)
    let sample = min 200 (10 * n) in
    let sum = ref 0.0 in
    for _ = 1 to sample do
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b then sum := !sum +. Float.abs (delta_of_swap a b)
    done;
    let avg_delta = Float.max 1e-9 (!sum /. float_of_int sample) in
    let t0 = -.avg_delta /. Float.log initial_acceptance in
    let initial_hpwl = Topdown.hpwl h pl in
    let cur = ref initial_hpwl and best = ref initial_hpwl in
    let best_x = ref (Array.copy pl.Topdown.x)
    and best_y = ref (Array.copy pl.Topdown.y)
    and best_rows = ref (Array.copy rows.row_of) in
    let total_moves = moves_per_cell * n in
    (* cool until T ~ 1e-4 T0 so the schedule ends effectively greedy *)
    let levels =
      max 1 (int_of_float (Float.ceil (Float.log 1e-4 /. Float.log cooling)))
    in
    let per_level = max 1 (total_moves / levels) in
    let accepted = ref 0 and attempted = ref 0 in
    let temp = ref t0 in
    for _ = 1 to levels do
      for _ = 1 to per_level do
        let a = Rng.int rng n and b = Rng.int rng n in
        if a <> b then begin
          incr attempted;
          let delta = delta_of_swap a b in
          let accept =
            delta <= 0.0
            || Rng.float rng 1.0 < Float.exp (-.delta /. !temp)
          in
          if accept then begin
            swap_coords pl rows a b;
            incr accepted;
            cur := !cur +. delta;
            if !cur < !best then begin
              best := !cur;
              best_x := Array.copy pl.Topdown.x;
              best_y := Array.copy pl.Topdown.y;
              best_rows := Array.copy rows.row_of
            end
          end
        end
      done;
      temp := !temp *. cooling
    done;
    let placement =
      { Topdown.x = !best_x; y = !best_y; width = pl.Topdown.width;
        height = pl.Topdown.height }
    in
    let final_hpwl = Topdown.hpwl h placement in
    ( { placement; rows = { rows with row_of = !best_rows } },
      { initial_hpwl; final_hpwl; accepted = !accepted; attempted = !attempted }
    )
  end
