(** Top-down global placement by recursive min-cut bisection — the
    driving application of the paper (§2.1): "a modern top-down
    standard-cell placement tool might perform ... recursive min-cut
    bisection of a cell-level netlist to obtain a coarse placement".

    The placer recursively bisects regions of the chip, alternating the
    cut direction with the region's aspect ratio, and partitions each
    region's cells with the configured engine.  Nets that cross a
    region boundary contribute {e propagated terminals} (Dunlop &
    Kernighan; Suaris & Kedem): a fixed vertex on the side of the
    region nearer the net's external pins — which is why fixed-vertex
    support in the partitioner is essential to the use model. *)

type config = {
  leaf_cells : int;
      (** stop bisecting below this many cells; default 8 *)
  tolerance : float;  (** balance tolerance per bisection; default 0.10 *)
  use_multilevel : bool;
      (** multilevel engine above [ml_threshold] cells, flat FM below *)
  ml_threshold : int;
  fm : Hypart_fm.Fm_config.t;  (** refinement engine *)
}

val default_config : config

type placement = {
  x : float array;
  y : float array;
  width : float;
  height : float;
}
(** Cell centre coordinates within [[0, width] x [0, height]]. *)

val place :
  ?config:config ->
  Hypart_rng.Rng.t ->
  Hypart_hypergraph.Hypergraph.t ->
  placement
(** Place all cells of the hypergraph in a square chip whose area is
    proportional to the total cell area. *)

val hpwl : Hypart_hypergraph.Hypergraph.t -> placement -> float
(** Half-perimeter wirelength: for each net, (x span + y span), summed
    weighted by net weight — the standard coarse-placement quality
    metric. *)

val random_placement :
  Hypart_rng.Rng.t -> Hypart_hypergraph.Hypergraph.t -> placement
(** Uniform random placement in the same chip outline (the quality
    baseline placements are compared against). *)
