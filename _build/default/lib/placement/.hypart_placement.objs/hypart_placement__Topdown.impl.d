lib/placement/topdown.ml: Array Float Hypart_fm Hypart_hypergraph Hypart_multilevel Hypart_partition Hypart_rng List Queue
