lib/placement/svg_export.ml: Array Float Hypart_hypergraph Printf Topdown
