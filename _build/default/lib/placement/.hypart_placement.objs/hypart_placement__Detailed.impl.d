lib/placement/detailed.ml: Array Float Hypart_hypergraph Hypart_rng List Topdown
