lib/placement/congestion.mli: Hypart_hypergraph Topdown
