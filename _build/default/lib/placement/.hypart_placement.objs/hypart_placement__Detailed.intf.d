lib/placement/detailed.mli: Hypart_hypergraph Hypart_rng Topdown
