lib/placement/topdown.mli: Hypart_fm Hypart_hypergraph Hypart_rng
