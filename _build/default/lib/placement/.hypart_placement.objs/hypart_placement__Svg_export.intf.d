lib/placement/svg_export.mli: Hypart_hypergraph Topdown
