lib/placement/congestion.ml: Array Float Hypart_hypergraph Topdown
