module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Problem = Hypart_partition.Problem
module Bipartition = Hypart_partition.Bipartition
module Fm = Hypart_fm.Fm
module Fm_config = Hypart_fm.Fm_config
module Ml = Hypart_multilevel.Ml_partitioner

type config = {
  leaf_cells : int;
  tolerance : float;
  use_multilevel : bool;
  ml_threshold : int;
  fm : Fm_config.t;
}

let default_config =
  {
    leaf_cells = 8;
    tolerance = 0.10;
    use_multilevel = true;
    ml_threshold = 600;
    fm = Fm_config.strong_lifo;
  }

type placement = {
  x : float array;
  y : float array;
  width : float;
  height : float;
}

type region = { x0 : float; y0 : float; x1 : float; y1 : float; cells : int array }

(* Final positions inside a leaf region: a small row-major grid, so
   cells don't stack on one point (mimics coarse row assignment). *)
let finalize_leaf pl r =
  let k = Array.length r.cells in
  if k > 0 then begin
    let cols = int_of_float (Float.ceil (sqrt (float_of_int k))) in
    let rows = (k + cols - 1) / cols in
    let cw = (r.x1 -. r.x0) /. float_of_int cols in
    let ch = (r.y1 -. r.y0) /. float_of_int rows in
    Array.iteri
      (fun i v ->
        let col = i mod cols and row = i / cols in
        pl.x.(v) <- r.x0 +. ((float_of_int col +. 0.5) *. cw);
        pl.y.(v) <- r.y0 +. ((float_of_int row +. 0.5) *. ch))
      r.cells
  end

(* Build the region subproblem with propagated terminals and partition
   it.  Returns the side of every region cell.  [serial] stamps the
   per-net scratch arrays so they need no clearing between regions. *)
let partition_region config rng h pl r ~vertical ~net_stamp ~net_serial
    ~local_of =
  let cells = r.cells in
  let n_cells = Array.length cells in
  Array.iteri (fun i v -> local_of.(v) <- i) cells;
  let mid = if vertical then (r.x0 +. r.x1) /. 2.0 else (r.y0 +. r.y1) /. 2.0 in
  (* collect incident nets once *)
  let nets = ref [] in
  Array.iter
    (fun v ->
      H.iter_edges h v (fun e ->
          if net_stamp.(e) <> net_serial then begin
            net_stamp.(e) <- net_serial;
            nets := e :: !nets
          end))
    cells;
  (* terminals: one per net with external pins, fixed to the side of the
     external pins' centroid *)
  let sub_edges = ref [] and sub_weights = ref [] in
  let terminals = ref [] in
  (* (terminal side) in discovery order *)
  let n_terminals = ref 0 in
  List.iter
    (fun e ->
      let internal = ref [] and ext_x = ref 0.0 and ext_y = ref 0.0 in
      let n_ext = ref 0 in
      H.iter_pins h e (fun u ->
          if local_of.(u) >= 0 then internal := local_of.(u) :: !internal
          else begin
            ext_x := !ext_x +. pl.x.(u);
            ext_y := !ext_y +. pl.y.(u);
            incr n_ext
          end);
      let internal = !internal in
      let keep =
        match internal with [] | [ _ ] -> !n_ext > 0 && internal <> [] | _ -> true
      in
      if keep then begin
        let pins =
          if !n_ext > 0 then begin
            let cx = !ext_x /. float_of_int !n_ext in
            let cy = !ext_y /. float_of_int !n_ext in
            let coord = if vertical then cx else cy in
            let side = if coord <= mid then 0 else 1 in
            let t = n_cells + !n_terminals in
            incr n_terminals;
            terminals := side :: !terminals;
            t :: internal
          end
          else internal
        in
        sub_edges := Array.of_list pins :: !sub_edges;
        sub_weights := H.edge_weight h e :: !sub_weights
      end)
    !nets;
  let n_sub = n_cells + !n_terminals in
  let vertex_weights =
    Array.init n_sub (fun i ->
        if i < n_cells then H.vertex_weight h cells.(i) else 1)
  in
  let fixed = Array.make n_sub (-1) in
  List.iteri
    (fun i side -> fixed.(n_cells + (!n_terminals - 1 - i)) <- side)
    !terminals;
  let sub =
    H.create ~vertex_weights
      ~edge_weights:(Array.of_list !sub_weights)
      ~num_vertices:n_sub
      ~edges:(Array.of_list !sub_edges)
      ()
  in
  let problem = Problem.make ~fixed ~tolerance:config.tolerance sub in
  let result =
    if config.use_multilevel && n_cells >= config.ml_threshold then
      Ml.run ~config:{ Ml.default with Ml.fm = config.fm } rng problem
    else Fm.run_random_start ~config:config.fm rng problem
  in
  (* reset the local map for the next region *)
  Array.iter (fun v -> local_of.(v) <- -1) cells;
  Array.init n_cells (fun i -> Bipartition.side result.Fm.solution i)

(* Split the region at the area-weighted cutline and enqueue children,
   updating each cell's position estimate to its child-region centre. *)
let push_children pl queue r ~vertical ~cells0 ~cells1 h =
  let weight cells =
    Array.fold_left (fun acc v -> acc + H.vertex_weight h v) 0 cells
  in
  let w0 = float_of_int (weight cells0) and w1 = float_of_int (weight cells1) in
  let frac = if w0 +. w1 = 0.0 then 0.5 else w0 /. (w0 +. w1) in
  (* clamp so neither child collapses *)
  let frac = Float.max 0.1 (Float.min 0.9 frac) in
  let child0, child1 =
    if vertical then begin
      let xm = r.x0 +. (frac *. (r.x1 -. r.x0)) in
      ( { r with x1 = xm; cells = cells0 }, { r with x0 = xm; cells = cells1 } )
    end
    else begin
      let ym = r.y0 +. (frac *. (r.y1 -. r.y0)) in
      ( { r with y1 = ym; cells = cells0 }, { r with y0 = ym; cells = cells1 } )
    end
  in
  List.iter
    (fun child ->
      let cx = (child.x0 +. child.x1) /. 2.0 in
      let cy = (child.y0 +. child.y1) /. 2.0 in
      Array.iter
        (fun v ->
          pl.x.(v) <- cx;
          pl.y.(v) <- cy)
        child.cells;
      Queue.push child queue)
    [ child0; child1 ]

let hpwl h pl =
  let total = ref 0.0 in
  for e = 0 to H.num_edges h - 1 do
    if H.edge_size h e >= 2 then begin
      let min_x = ref infinity and max_x = ref neg_infinity in
      let min_y = ref infinity and max_y = ref neg_infinity in
      H.iter_pins h e (fun v ->
          if pl.x.(v) < !min_x then min_x := pl.x.(v);
          if pl.x.(v) > !max_x then max_x := pl.x.(v);
          if pl.y.(v) < !min_y then min_y := pl.y.(v);
          if pl.y.(v) > !max_y then max_y := pl.y.(v));
      total :=
        !total
        +. (float_of_int (H.edge_weight h e)
            *. (!max_x -. !min_x +. (!max_y -. !min_y)))
    end
  done;
  !total

let random_placement rng h =
  let n = H.num_vertices h in
  let side_len = sqrt (float_of_int (max 1 (H.total_vertex_weight h))) in
  {
    x = Array.init n (fun _ -> Rng.float rng side_len);
    y = Array.init n (fun _ -> Rng.float rng side_len);
    width = side_len;
    height = side_len;
  }

let place ?(config = default_config) rng h =
  let n = H.num_vertices h in
  let side_len = sqrt (float_of_int (max 1 (H.total_vertex_weight h))) in
  let pl =
    {
      x = Array.make n (side_len /. 2.0);
      y = Array.make n (side_len /. 2.0);
      width = side_len;
      height = side_len;
    }
  in
  if n = 0 then pl
  else begin
    let net_stamp = Array.make (max 1 (H.num_edges h)) (-1) in
    let net_serial = ref 0 in
    let local_of = Array.make n (-1) in
    let queue = Queue.create () in
    Queue.push
      { x0 = 0.0; y0 = 0.0; x1 = side_len; y1 = side_len;
        cells = Array.init n (fun v -> v) }
      queue;
    while not (Queue.is_empty queue) do
      let r = Queue.pop queue in
      if Array.length r.cells <= config.leaf_cells then finalize_leaf pl r
      else begin
        let vertical = r.x1 -. r.x0 >= r.y1 -. r.y0 in
        incr net_serial;
        let sides =
          partition_region config rng h pl r ~vertical ~net_stamp
            ~net_serial:!net_serial ~local_of
        in
        let pick s =
          let acc = ref [] in
          Array.iteri (fun i v -> if sides.(i) = s then acc := v :: !acc) r.cells;
          Array.of_list (List.rev !acc)
        in
        let cells0 = pick 0 and cells1 = pick 1 in
        if Array.length cells0 = 0 || Array.length cells1 = 0 then begin
          (* degenerate partition (can happen when terminals dominate a
             tiny region): fall back to an index split *)
          let k = Array.length r.cells / 2 in
          let cells0 = Array.sub r.cells 0 k in
          let cells1 = Array.sub r.cells k (Array.length r.cells - k) in
          push_children pl queue r ~vertical ~cells0 ~cells1 h
        end
        else push_children pl queue r ~vertical ~cells0 ~cells1 h
      end
    done;
    pl
  end

