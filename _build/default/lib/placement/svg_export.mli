(** SVG rendering of placements and partitions.

    Produces a self-contained [.svg]: one square per cell at its placed
    position (side length proportional to the square root of its area),
    optionally coloured by partition side, with net fly-lines for small
    designs.  Intended for eyeballing placer and partitioner behaviour
    — the kind of inspection that catches "silently wrong" results the
    paper warns about before they reach a results table. *)

val write :
  ?side:int array ->
  ?draw_nets:bool ->
  ?canvas:float ->
  string ->
  Hypart_hypergraph.Hypergraph.t ->
  Topdown.placement ->
  unit
(** [write path h pl] renders the placement.  [side] colours cells by
    part id (up to 8 distinct colours, cycling).  [draw_nets] (default
    only when the design has at most 2000 pins) draws each net's star
    from its centroid.  [canvas] is the image size in pixels (default
    800).  @raise Invalid_argument when [side] has the wrong length. *)
