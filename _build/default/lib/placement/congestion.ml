module H = Hypart_hypergraph.Hypergraph

type t = { bins : int; demand : float array array }

let total_demand h pl =
  let total = ref 0.0 in
  for e = 0 to H.num_edges h - 1 do
    if H.edge_size h e >= 2 then begin
      let min_x = ref infinity and max_x = ref neg_infinity in
      let min_y = ref infinity and max_y = ref neg_infinity in
      H.iter_pins h e (fun v ->
          if pl.Topdown.x.(v) < !min_x then min_x := pl.Topdown.x.(v);
          if pl.Topdown.x.(v) > !max_x then max_x := pl.Topdown.x.(v);
          if pl.Topdown.y.(v) < !min_y then min_y := pl.Topdown.y.(v);
          if pl.Topdown.y.(v) > !max_y then max_y := pl.Topdown.y.(v));
      total :=
        !total
        +. (float_of_int (H.edge_weight h e)
            *. (!max_x -. !min_x +. (!max_y -. !min_y)))
    end
  done;
  !total

let rudy ?(bins = 16) h pl =
  if bins < 1 then invalid_arg "Congestion.rudy: bins must be >= 1";
  let demand = Array.make_matrix bins bins 0.0 in
  let bw = pl.Topdown.width /. float_of_int bins in
  let bh = pl.Topdown.height /. float_of_int bins in
  if bw > 0.0 && bh > 0.0 then
    for e = 0 to H.num_edges h - 1 do
      if H.edge_size h e >= 2 then begin
        let min_x = ref infinity and max_x = ref neg_infinity in
        let min_y = ref infinity and max_y = ref neg_infinity in
        H.iter_pins h e (fun v ->
            if pl.Topdown.x.(v) < !min_x then min_x := pl.Topdown.x.(v);
            if pl.Topdown.x.(v) > !max_x then max_x := pl.Topdown.x.(v);
            if pl.Topdown.y.(v) < !min_y then min_y := pl.Topdown.y.(v);
            if pl.Topdown.y.(v) > !max_y then max_y := pl.Topdown.y.(v));
        let net_demand =
          float_of_int (H.edge_weight h e)
          *. (!max_x -. !min_x +. (!max_y -. !min_y))
        in
        if net_demand > 0.0 then begin
          (* spread uniformly over the bounding box, proportionally to
             each bin's overlap with it *)
          let area = (!max_x -. !min_x) *. (!max_y -. !min_y) in
          let clamp b = max 0 (min (bins - 1) b) in
          let bx0 = clamp (int_of_float (!min_x /. bw)) in
          let bx1 = clamp (int_of_float (!max_x /. bw)) in
          let by0 = clamp (int_of_float (!min_y /. bh)) in
          let by1 = clamp (int_of_float (!max_y /. bh)) in
          if area = 0.0 then begin
            (* degenerate (collinear) box: put everything in its bins
               uniformly *)
            let nbins = (bx1 - bx0 + 1) * (by1 - by0 + 1) in
            let share = net_demand /. float_of_int nbins in
            for by = by0 to by1 do
              for bx = bx0 to bx1 do
                demand.(by).(bx) <- demand.(by).(bx) +. share
              done
            done
          end
          else begin
            let density = net_demand /. area in
            for by = by0 to by1 do
              for bx = bx0 to bx1 do
                let cell_x0 = float_of_int bx *. bw in
                let cell_y0 = float_of_int by *. bh in
                let ox =
                  Float.max 0.0
                    (Float.min (cell_x0 +. bw) !max_x -. Float.max cell_x0 !min_x)
                in
                let oy =
                  Float.max 0.0
                    (Float.min (cell_y0 +. bh) !max_y -. Float.max cell_y0 !min_y)
                in
                demand.(by).(bx) <- demand.(by).(bx) +. (density *. ox *. oy)
              done
            done
          end
        end
      end
    done;
  { bins; demand }

let peak t =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    0.0 t.demand

let average t =
  let sum =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0.0 t.demand
  in
  sum /. float_of_int (t.bins * t.bins)
