module H = Hypart_hypergraph.Hypergraph

let palette =
  [| "#4472c4"; "#ed7d31"; "#70ad47"; "#ffc000"; "#5b9bd5"; "#a5a5a5";
     "#c00000"; "#7030a0" |]

let write ?side ?draw_nets ?(canvas = 800.0) path h pl =
  let n = H.num_vertices h in
  (match side with
   | Some s when Array.length s <> n ->
     invalid_arg "Svg_export.write: side length mismatch"
   | _ -> ());
  let draw_nets =
    match draw_nets with Some d -> d | None -> H.num_pins h <= 2000
  in
  let sx = canvas /. Float.max 1e-9 pl.Topdown.width in
  let sy = canvas /. Float.max 1e-9 pl.Topdown.height in
  let oc = open_out path in
  (try
     Printf.fprintf oc
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\">\n"
       canvas canvas canvas canvas;
     Printf.fprintf oc
       "<rect width=\"%.0f\" height=\"%.0f\" fill=\"#fafafa\" stroke=\"#333\"/>\n"
       canvas canvas;
     if draw_nets then
       for e = 0 to H.num_edges h - 1 do
         if H.edge_size h e >= 2 then begin
           let cx = ref 0.0 and cy = ref 0.0 and k = ref 0 in
           H.iter_pins h e (fun v ->
               cx := !cx +. pl.Topdown.x.(v);
               cy := !cy +. pl.Topdown.y.(v);
               incr k);
           let cx = !cx /. float_of_int !k *. sx in
           let cy = !cy /. float_of_int !k *. sy in
           H.iter_pins h e (fun v ->
               Printf.fprintf oc
                 "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
                  stroke=\"#99b\" stroke-width=\"0.4\" opacity=\"0.5\"/>\n"
                 cx cy
                 (pl.Topdown.x.(v) *. sx)
                 (pl.Topdown.y.(v) *. sy))
         end
       done;
     for v = 0 to n - 1 do
       let r = 1.5 +. sqrt (float_of_int (H.vertex_weight h v)) in
       let colour =
         match side with
         | Some s -> palette.(s.(v) mod Array.length palette)
         | None -> "#4472c4"
       in
       Printf.fprintf oc
         "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
          fill=\"%s\" stroke=\"#222\" stroke-width=\"0.3\"/>\n"
         ((pl.Topdown.x.(v) *. sx) -. (r /. 2.0))
         ((pl.Topdown.y.(v) *. sy) -. (r /. 2.0))
         r r colour
     done;
     output_string oc "</svg>\n"
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
