(** Routing-congestion estimation for placements (RUDY).

    The §2.1 use model is "timing- and routing congestion-driven"; the
    standard fast congestion estimate is RUDY (Rectangular Uniform wire
    DensitY, Spindler & Johannes): each net spreads a wiring demand of
    [w(e) · (dx + dy)] uniformly over its bounding box, and the chip is
    binned into a grid whose per-bin totals approximate routing
    demand.  Peak and average bin demand summarize a placement's
    routability. *)

type t = {
  bins : int;  (** grid is [bins x bins] *)
  demand : float array array;  (** [demand.(y).(x)] *)
}

val rudy :
  ?bins:int ->
  Hypart_hypergraph.Hypergraph.t ->
  Topdown.placement ->
  t
(** Compute the RUDY map ([bins] defaults to 16).
    @raise Invalid_argument when [bins < 1]. *)

val peak : t -> float
val average : t -> float

val total_demand : Hypart_hypergraph.Hypergraph.t -> Topdown.placement -> float
(** Sum of every net's demand [w(e) (dx + dy)] — conserved by binning
    (up to clipping at the chip boundary), which the tests verify. *)
