lib/generator/ibm_suite.ml: Char Generator Hypart_rng List String
