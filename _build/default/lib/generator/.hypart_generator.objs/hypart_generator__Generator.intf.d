lib/generator/generator.mli: Hypart_hypergraph Hypart_rng
