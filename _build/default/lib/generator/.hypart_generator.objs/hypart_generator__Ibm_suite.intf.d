lib/generator/ibm_suite.mli: Hypart_hypergraph
