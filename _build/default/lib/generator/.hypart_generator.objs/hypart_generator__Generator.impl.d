lib/generator/generator.ml: Array Float Hypart_hypergraph Hypart_rng
