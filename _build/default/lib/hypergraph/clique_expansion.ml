let adjacency ?(skip_nets_above = 64) h =
  let n = Hypergraph.num_vertices h in
  let adj = Array.make n [] in
  let tbl = Hashtbl.create (4 * n) in
  for e = 0 to Hypergraph.num_edges h - 1 do
    let size = Hypergraph.edge_size h e in
    if size >= 2 && size <= skip_nets_above then begin
      let w = float_of_int (Hypergraph.edge_weight h e) /. float_of_int (size - 1) in
      let pins = Hypergraph.edge_pins h e in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if a < b then begin
                let key = (a * n) + b in
                let cur = try Hashtbl.find tbl key with Not_found -> 0.0 in
                Hashtbl.replace tbl key (cur +. w)
              end)
            pins)
        pins
    end
  done;
  Hashtbl.iter
    (fun key w ->
      let a = key / n and b = key mod n in
      adj.(a) <- (b, w) :: adj.(a);
      adj.(b) <- (a, w) :: adj.(b))
    tbl;
  adj

let degrees adj =
  Array.map (List.fold_left (fun acc (_, w) -> acc +. w) 0.0) adj
