exception Parse_error of string

let parse_error path line fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_error (Printf.sprintf "%s:%d: %s" path line msg)))
    fmt

let with_out path f =
  let oc = open_out path in
  (try f oc with e -> close_out_noerr oc; raise e);
  close_out oc

(* Bookshelf comment lines start with '#'. *)
let read_lines path =
  let ic =
    try open_in path
    with Sys_error msg -> raise (Parse_error msg)
  in
  let lines = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let l = input_line ic in
       incr lineno;
       let l = String.trim l in
       if l <> "" && l.[0] <> '#' then lines := (!lineno, l) :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let tokens l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

let vertex_name ~num_cells v =
  if v < num_cells then Printf.sprintf "a%d" v
  else Printf.sprintf "p%d" (v - num_cells)

let vertex_of_name path lineno ~num_cells ~num_pads name =
  if String.length name < 2 then parse_error path lineno "bad node name %S" name;
  let id =
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some v -> v
    | None -> parse_error path lineno "bad node name %S" name
  in
  match name.[0] with
  | 'a' when id >= 0 && id < num_cells -> id
  | 'p' when id >= 0 && id < num_pads -> num_cells + id
  | _ -> parse_error path lineno "node %S out of range" name

(* expects "Key : value" possibly with the value on the same tokens *)
let header_count path lineno key toks =
  match toks with
  | [ k; ":"; v ] when k = key -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> parse_error path lineno "bad %s value %S" key v)
  | _ -> parse_error path lineno "expected \"%s : <n>\"" key

let write ?(num_pads = 0) ~basename h =
  let nv = Hypergraph.num_vertices h in
  if num_pads < 0 || num_pads > nv then
    invalid_arg "Bookshelf.write: bad pad count";
  let num_cells = nv - num_pads in
  with_out (basename ^ ".nodes") (fun oc ->
      output_string oc "UCLA nodes 1.0\n";
      Printf.fprintf oc "NumNodes : %d\n" nv;
      Printf.fprintf oc "NumTerminals : %d\n" num_pads;
      for v = 0 to nv - 1 do
        Printf.fprintf oc "  %s %d 1%s\n" (vertex_name ~num_cells v)
          (Hypergraph.vertex_weight h v)
          (if v >= num_cells then " terminal" else "")
      done);
  with_out (basename ^ ".nets") (fun oc ->
      output_string oc "UCLA nets 1.0\n";
      Printf.fprintf oc "NumNets : %d\n" (Hypergraph.num_edges h);
      Printf.fprintf oc "NumPins : %d\n" (Hypergraph.num_pins h);
      for e = 0 to Hypergraph.num_edges h - 1 do
        Printf.fprintf oc "NetDegree : %d  n%d\n" (Hypergraph.edge_size h e) e;
        Hypergraph.iter_pins h e (fun v ->
            Printf.fprintf oc "  %s B\n" (vertex_name ~num_cells v))
      done)

let read_nodes path =
  match read_lines path with
  | (l1, header) :: (l2, nodes_line) :: (l3, terms_line) :: rest ->
    if header <> "UCLA nodes 1.0" then parse_error path l1 "bad .nodes header";
    let nv = header_count path l2 "NumNodes" (tokens nodes_line) in
    let num_pads = header_count path l3 "NumTerminals" (tokens terms_line) in
    if List.length rest <> nv then
      raise
        (Parse_error
           (Printf.sprintf "%s: expected %d node lines, found %d" path nv
              (List.length rest)));
    let num_cells = nv - num_pads in
    let widths = Array.make nv 1 in
    List.iter
      (fun (lineno, l) ->
        match tokens l with
        | name :: width :: _ ->
          let v = vertex_of_name path lineno ~num_cells ~num_pads name in
          (match int_of_string_opt width with
           | Some w when w > 0 -> widths.(v) <- w
           | _ -> parse_error path lineno "bad width %S" width)
        | _ -> parse_error path lineno "expected \"name width height\"")
      rest;
    (nv, num_pads, widths)
  | _ -> raise (Parse_error (path ^ ": truncated .nodes file"))

let read_nets path ~num_cells ~num_pads =
  match read_lines path with
  | (l1, header) :: (l2, nets_line) :: (l3, pins_line) :: rest ->
    if header <> "UCLA nets 1.0" then parse_error path l1 "bad .nets header";
    let num_nets = header_count path l2 "NumNets" (tokens nets_line) in
    let num_pins = header_count path l3 "NumPins" (tokens pins_line) in
    let nets = ref [] in
    let remaining = ref rest in
    let total_pins = ref 0 in
    for _ = 1 to num_nets do
      match !remaining with
      | (lineno, l) :: rest -> (
          remaining := rest;
          match tokens l with
          | "NetDegree" :: ":" :: d :: _ ->
            let d =
              match int_of_string_opt d with
              | Some d when d >= 1 -> d
              | _ -> parse_error path lineno "bad net degree %S" d
            in
            let pins = Array.make d 0 in
            for i = 0 to d - 1 do
              match !remaining with
              | (lineno, l) :: rest -> (
                  remaining := rest;
                  match tokens l with
                  | name :: _ ->
                    pins.(i) <-
                      vertex_of_name path lineno ~num_cells ~num_pads name
                  | [] -> parse_error path lineno "empty pin line")
              | [] ->
                raise (Parse_error (path ^ ": truncated net pin list"))
            done;
            total_pins := !total_pins + d;
            nets := pins :: !nets
          | _ -> parse_error path lineno "expected \"NetDegree : d\"")
      | [] -> raise (Parse_error (path ^ ": fewer nets than promised"))
    done;
    if !total_pins <> num_pins then
      raise
        (Parse_error
           (Printf.sprintf "%s: header promised %d pins, found %d" path num_pins
              !total_pins));
    Array.of_list (List.rev !nets)
  | _ -> raise (Parse_error (path ^ ": truncated .nets file"))

let read ~basename =
  let nv, num_pads, widths = read_nodes (basename ^ ".nodes") in
  let edges = read_nets (basename ^ ".nets") ~num_cells:(nv - num_pads) ~num_pads in
  ( Hypergraph.create ~vertex_weights:widths ~num_vertices:nv ~edges (),
    num_pads )

let write_pl ~basename ~x ~y =
  if Array.length x <> Array.length y then
    invalid_arg "Bookshelf.write_pl: coordinate arrays disagree";
  with_out (basename ^ ".pl") (fun oc ->
      output_string oc "UCLA pl 1.0\n";
      Array.iteri
        (fun v _ -> Printf.fprintf oc "  a%d %.4f %.4f : N\n" v x.(v) y.(v))
        x)

let read_pl path ~num_vertices =
  let x = Array.make num_vertices 0.0 and y = Array.make num_vertices 0.0 in
  (match read_lines path with
   | (l1, header) :: rest ->
     if header <> "UCLA pl 1.0" then parse_error path l1 "bad .pl header";
     List.iter
       (fun (lineno, l) ->
         match tokens l with
         | name :: xs :: ys :: _ ->
           let v =
             vertex_of_name path lineno ~num_cells:num_vertices ~num_pads:0 name
           in
           (match (float_of_string_opt xs, float_of_string_opt ys) with
            | Some xv, Some yv ->
              x.(v) <- xv;
              y.(v) <- yv
            | _ -> parse_error path lineno "bad coordinates")
         | _ -> parse_error path lineno "expected \"name x y : orient\"")
       rest
   | [] -> raise (Parse_error (path ^ ": empty .pl file")));
  (x, y)
