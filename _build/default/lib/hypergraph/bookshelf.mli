(** The UCLA "Bookshelf" physical-design interchange format — the
    benchmark format later standardized by the paper's own research
    group (GSRC Bookshelf; Caldwell, Kahng & Markov among its authors).

    Three of the Bookshelf slots are supported:

    - [.nodes] — ["UCLA nodes 1.0"] header, [NumNodes]/[NumTerminals]
      counts, then one ["name width height [terminal]"] line per cell;
      cell areas map to widths (height 1), pads are terminals;
    - [.nets] — ["UCLA nets 1.0"] header, [NumNets]/[NumPins] counts,
      then per net a ["NetDegree : d  name"] line followed by [d] pin
      lines;
    - [.pl] — one ["name x y : N"] placement line per cell (writer
      only, for exporting {!Hypart_placement} results).

    Cells are named [a<i>] (or [p<j>] for the trailing [num_pads]
    terminals), matching the {!Netlist_io} conventions. *)

exception Parse_error of string

val write :
  ?num_pads:int -> basename:string -> Hypergraph.t -> unit
(** [write ~basename h] writes [basename.nodes] and [basename.nets].
    The last [num_pads] (default 0) vertices become terminals. *)

val read : basename:string -> Hypergraph.t * int
(** Parse [basename.nodes] + [basename.nets]; returns the hypergraph
    (cell areas from node widths) and the terminal count. *)

val write_pl :
  basename:string -> x:float array -> y:float array -> unit
(** Write [basename.pl] with one placement row per cell. *)

val read_pl : string -> num_vertices:int -> float array * float array
(** Parse a [.pl] file back into coordinate arrays. *)
