type t = {
  num_vertices : int;
  num_edges : int;
  num_pins : int;
  avg_vertex_degree : float;
  avg_edge_size : float;
  max_edge_size : int;
  max_vertex_degree : int;
  total_area : int;
  max_area : int;
  min_area : int;
  edges_over_50_pins : int;
}

let pp ppf s =
  Format.fprintf ppf
    "@[<v>vertices: %d@ edges: %d@ pins: %d@ avg degree: %.2f@ \
     avg net size: %.2f@ max net size: %d@ max degree: %d@ \
     total area: %d@ area range: [%d, %d]@ nets > 50 pins: %d@]"
    s.num_vertices s.num_edges s.num_pins s.avg_vertex_degree
    s.avg_edge_size s.max_edge_size s.max_vertex_degree s.total_area
    s.min_area s.max_area s.edges_over_50_pins
