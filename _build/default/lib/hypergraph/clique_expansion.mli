(** Clique-model graph approximation of a hypergraph.

    Each net of size [s] contributes weight [w(e) / (s - 1)] between
    every pin pair, the standard net model used by graph-based
    partitioners (Kernighan-Lin, spectral methods) when applied to
    netlists.  Nets larger than [skip_nets_above] are dropped — their
    cliques are dense, expensive and carry almost no cut signal. *)

val adjacency :
  ?skip_nets_above:int -> Hypergraph.t -> (int * float) list array
(** [adjacency h] returns, for every vertex, its neighbour list with
    accumulated clique weights (symmetric; no self-loops).  Default
    [skip_nets_above] is 64. *)

val degrees : (int * float) list array -> float array
(** Weighted degree of every vertex (row sums). *)
