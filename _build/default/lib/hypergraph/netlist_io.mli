(** Reading and writing hypergraph netlists.

    Two on-disk formats are supported:

    - {b hMetis [.hgr]}: the standard format of the hMetis distribution.
      First line: [num_edges num_vertices [fmt]] where [fmt] is omitted
      (unweighted), [1] (edge weights), [10] (vertex weights) or [11]
      (both).  Then one line per hyperedge listing 1-indexed pins
      (prefixed by the edge weight when present), then one line per
      vertex weight when present.  Comment lines start with ['%'].

    - {b area file [.are]}: one ["<name> <area>"] line per cell, in the
      style of the ISPD98 distribution; vertex [i] is named [a<i>].
      Used together with an [.hgr] file to carry actual cell areas.

    - {b ISPD98 netlist [.netD]}: the format the IBM benchmarks were
      distributed in.  Five header lines (a zero, then the pin, net,
      module counts and the pad offset), followed by one line per pin:
      ["<name> <s|l> [direction]"], where ['s'] opens a new net and
      ['l'] continues the current one.  Cells are named [a<i>] and pads
      [p<j>]; pads map to the vertex ids after the cells.

    - {b partition file [.part]}: one side (0 or 1) per line, one line
      per vertex — the interchange format for solutions. *)

exception Parse_error of string
(** Raised with a descriptive message (file, line, cause) on malformed
    input. *)

val write_hgr : ?with_weights:bool -> string -> Hypergraph.t -> unit
(** [write_hgr path h] writes [h] in [.hgr] format.  When
    [with_weights] (default [true]) both edge and vertex weights are
    written (fmt 11); otherwise the instance is written unweighted. *)

val read_hgr : string -> Hypergraph.t
(** Parse an [.hgr] file.  Accepts fmt 0 / 1 / 10 / 11. *)

val write_are : string -> Hypergraph.t -> unit
(** [write_are path h] writes cell areas, one ["a<i> <area>"] per line. *)

val read_are : string -> num_vertices:int -> int array
(** [read_are path ~num_vertices] parses an area file into an array
    indexed by vertex id. *)

val read_hgr_with_are : hgr:string -> are:string -> Hypergraph.t
(** Combine an (unweighted or weighted) [.hgr] with actual areas from an
    [.are] file; the [.are] areas win. *)

val write_netd : ?num_pads:int -> string -> Hypergraph.t -> unit
(** [write_netd path h] writes ISPD98 [.netD].  The last [num_pads]
    vertices (default 0) are written as pads ([p<j>]); the rest as
    cells ([a<i>]).  Edge weights are not representable in [.netD] and
    are dropped. *)

val read_netd : string -> Hypergraph.t * int
(** Parse a [.netD] file; returns the hypergraph (cells first, then
    pads) and the number of pads.  Vertex areas default to 1 (combine
    with {!read_are}). *)

val write_partition : string -> int array -> unit
(** Write a solution's side array, one side per line. *)

val read_partition : string -> num_vertices:int -> int array
(** Parse a partition file (sides are nonnegative integers; a
    bipartition uses 0 and 1, k-way files use 0..k-1).
    @raise Parse_error on malformed input or a line count that
    disagrees with [num_vertices]. *)
