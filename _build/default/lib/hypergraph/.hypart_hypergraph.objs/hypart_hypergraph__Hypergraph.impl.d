lib/hypergraph/hypergraph.ml: Array Format Hashtbl List Queue Stats_summary
