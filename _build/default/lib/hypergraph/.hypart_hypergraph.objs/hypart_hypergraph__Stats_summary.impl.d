lib/hypergraph/stats_summary.ml: Format
