lib/hypergraph/clique_expansion.ml: Array Hashtbl Hypergraph List
