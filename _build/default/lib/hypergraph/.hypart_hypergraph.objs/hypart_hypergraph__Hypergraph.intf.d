lib/hypergraph/hypergraph.mli: Format Stats_summary
