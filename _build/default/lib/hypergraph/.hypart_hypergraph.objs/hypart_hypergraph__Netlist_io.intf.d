lib/hypergraph/netlist_io.mli: Hypergraph
