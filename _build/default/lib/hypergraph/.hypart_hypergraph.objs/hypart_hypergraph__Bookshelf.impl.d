lib/hypergraph/bookshelf.ml: Array Hypergraph List Printf String
