lib/hypergraph/netlist_io.ml: Array Hypergraph List Printf String
