lib/hypergraph/stats_summary.mli: Format
