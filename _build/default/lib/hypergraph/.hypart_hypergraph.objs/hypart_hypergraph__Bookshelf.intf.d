lib/hypergraph/bookshelf.mli: Hypergraph
