lib/hypergraph/clique_expansion.mli: Hypergraph
