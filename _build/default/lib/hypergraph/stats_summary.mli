(** Descriptive statistics of a hypergraph instance.

    These are the attributes the paper calls "salient attributes of
    real-world inputs" (size, sparsity, net sizes, large nets, area
    variation); the generator's tests assert that synthetic instances
    land in the realistic ranges. *)

type t = {
  num_vertices : int;
  num_edges : int;
  num_pins : int;
  avg_vertex_degree : float;
  avg_edge_size : float;
  max_edge_size : int;
  max_vertex_degree : int;
  total_area : int;
  max_area : int;
  min_area : int;
  edges_over_50_pins : int;  (** count of clock/reset-like mega-nets *)
}

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
