lib/sa/sa_partitioner.ml: Array Float Hypart_hypergraph Hypart_partition Hypart_rng
