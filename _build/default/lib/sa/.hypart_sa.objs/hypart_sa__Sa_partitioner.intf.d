lib/sa/sa_partitioner.mli: Hypart_partition Hypart_rng
