type 'name row = {
  budget : float;
  winner : 'name;
  values : ('name * float) list;
}

let rank_at_budgets ~budgets ~curves =
  if curves = [] then invalid_arg "Ranking.rank_at_budgets: no curves";
  List.iter
    (fun (_, values) ->
      if Array.length values <> Array.length budgets then
        invalid_arg "Ranking.rank_at_budgets: curve length mismatch")
    curves;
  Array.to_list
    (Array.mapi
       (fun i budget ->
         let values = List.map (fun (name, vs) -> (name, vs.(i))) curves in
         let winner, _ =
           List.fold_left
             (fun (bn, bv) (name, v) -> if v < bv then (name, v) else (bn, bv))
             (List.hd values |> fun (n, v) -> (n, v))
             (List.tl values)
         in
         { budget; winner; values })
       budgets)

let dominance_table ~budgets ~per_instance =
  List.map
    (fun (instance, curves) ->
      let rows = rank_at_budgets ~budgets ~curves in
      (instance, Array.of_list (List.map (fun r -> r.winner) rows)))
    per_instance
