(** Statistical significance tests.

    Brglez (cited in §3.2) argued that CAD experiments should report
    whether improvements are "due to improved heuristic [or] merely due
    to chance"; these tests answer that for cut-size samples. *)

type test_result = {
  statistic : float;
  p_value : float;  (** two-sided *)
}

val welch_t_test : float array -> float array -> test_result
(** Two-sample t-test with unequal variances (Welch).  Requires at
    least two observations per sample.  The p-value uses the Student t
    distribution with Welch-Satterthwaite degrees of freedom. *)

val mann_whitney_u : float array -> float array -> test_result
(** Mann-Whitney U (rank-sum) test with normal approximation and tie
    correction — appropriate for cut distributions, which are skewed.
    Requires at least two observations per sample. *)

val student_t_cdf : df:float -> float -> float
(** CDF of the Student t distribution (exposed for tests). *)
