type 'a point = { label : 'a; cost : float; runtime : float }

let dominates b a = b.cost < a.cost && b.runtime < a.runtime

let frontier points =
  let non_dominated =
    List.filter
      (fun a -> not (List.exists (fun b -> dominates b a) points))
      points
  in
  List.sort
    (fun a b ->
      match compare a.runtime b.runtime with
      | 0 -> compare a.cost b.cost
      | c -> c)
    non_dominated
