(** Non-dominated frontiers of (cost, runtime) performance points.

    The paper §3.2: point A is {e dominated} by point B iff B has both
    lower cost and lower runtime ("no one would ever choose to run
    configuration A over configuration B"); the non-dominated frontier
    is the Pareto set, from which the reader sees which heuristic is
    preferable in each runtime regime. *)

type 'a point = { label : 'a; cost : float; runtime : float }

val dominates : 'a point -> 'a point -> bool
(** [dominates b a]: strictly lower cost {e and} strictly lower
    runtime. *)

val frontier : 'a point list -> 'a point list
(** The non-dominated subset, sorted by increasing runtime (and
    decreasing cost).  Duplicate performance points are all kept (none
    dominates the other under the strict definition). *)
