(** Best-so-far (BSF) curves (Barr et al.; paper §3.2).

    A BSF curve plots the solution cost a multistart heuristic is
    expected to achieve against the CPU budget τ.  The input is the
    per-start record list a multistart run produces: each start's final
    cost and its CPU seconds, in execution order. *)

type point = { budget : float; cost : float }

val curve : (float * float) list -> point list
(** [curve records] — [(seconds, cost)] per start in execution order —
    is the exact step curve of that one run sequence: after each start
    completes, the best cost so far at the cumulative CPU time.  Starts
    that finish after the previous best do not add points. *)

val expected_curve :
  Hypart_rng.Rng.t ->
  records:(float * float) array ->
  budgets:float array ->
  resamples:int ->
  float array
(** Monte-Carlo estimate of the {e expected} BSF value at each budget:
    the start records are resampled with replacement into [resamples]
    random sequences; for each sequence and budget τ, the best cost
    among starts completing within τ is taken (infinity when none
    does), then averaged over sequences.  This is the
    speed-dependent-ranking primitive of Schreiber & Martin. *)

val value_at : point list -> float -> float
(** [value_at curve tau]: the curve's cost at budget [tau] (infinity
    before the first point). *)

type band = { p10 : float array; median : float array; p90 : float array }

val quantile_band :
  Hypart_rng.Rng.t ->
  records:(float * float) array ->
  budgets:float array ->
  resamples:int ->
  band
(** Like {!expected_curve}, but returning the 10th/50th/90th percentile
    envelope of the resampled BSF values at each budget — the
    "descriptors of the distributions" the paper asks to accompany
    averages.  Budgets where fewer than all resamples produced a finite
    value report [infinity] for the affected quantiles. *)
