(** Bootstrap confidence intervals for arbitrary sample statistics —
    used to attach uncertainty to the mean cuts in EXPERIMENTS.md
    without distributional assumptions (cut distributions are skewed,
    so normal-theory intervals mislead). *)

type interval = { lo : float; hi : float; point : float }

val confidence_interval :
  ?resamples:int ->
  ?level:float ->
  Hypart_rng.Rng.t ->
  statistic:(float array -> float) ->
  float array ->
  interval
(** Percentile bootstrap: resample with replacement [resamples] times
    (default 1000), evaluate [statistic] on each, and take the
    [(1-level)/2] and [(1+level)/2] quantiles (default [level] 0.95).
    [point] is the statistic of the original sample.
    @raise Invalid_argument on an empty sample or a [level] outside
    (0, 1). *)

val mean_ci :
  ?resamples:int -> ?level:float -> Hypart_rng.Rng.t -> float array -> interval
(** {!confidence_interval} for the mean. *)
