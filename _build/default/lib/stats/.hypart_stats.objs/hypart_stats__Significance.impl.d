lib/stats/significance.ml: Array Descriptive Float
