lib/stats/ranking.mli:
