lib/stats/pareto.ml: List
