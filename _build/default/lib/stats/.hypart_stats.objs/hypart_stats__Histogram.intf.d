lib/stats/histogram.mli:
