lib/stats/bsf.mli: Hypart_rng
