lib/stats/ranking.ml: Array List
