lib/stats/descriptive.mli:
