lib/stats/bootstrap.ml: Array Descriptive Hypart_rng
