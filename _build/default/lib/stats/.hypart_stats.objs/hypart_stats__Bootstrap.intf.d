lib/stats/bootstrap.mli: Hypart_rng
