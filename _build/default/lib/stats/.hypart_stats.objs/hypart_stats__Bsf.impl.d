lib/stats/bsf.ml: Array Descriptive Float Hypart_rng List
