lib/stats/pareto.mli:
