lib/stats/significance.mli:
