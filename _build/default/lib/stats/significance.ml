type test_result = { statistic : float; p_value : float }

(* log Gamma by the Lanczos approximation (g = 7, 9 coefficients);
   |relative error| < 1e-13 for positive arguments. *)
let lanczos_c =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec lgamma z =
  if z < 0.5 then
    (* reflection formula *)
    Float.log (Float.pi /. Float.sin (Float.pi *. z)) -. lgamma (1.0 -. z)
  else begin
    let z = z -. 1.0 in
    let x = ref lanczos_c.(0) in
    for i = 1 to 8 do
      x := !x +. (lanczos_c.(i) /. (z +. float_of_int i))
    done;
    let t = z +. 7.5 in
    (0.5 *. Float.log (2.0 *. Float.pi))
    +. ((z +. 0.5) *. Float.log t)
    -. t
    +. Float.log !x
  end

(* Regularized incomplete beta function I_x(a, b) by the Lentz continued
   fraction (Numerical Recipes ch. 6.4); accurate to ~1e-12 for the
   parameter ranges t-tests need. *)
let rec incomplete_beta a b x =
  if x < 0.0 || x > 1.0 then invalid_arg "incomplete_beta: x outside [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let ln_beta = lgamma a +. lgamma b -. lgamma (a +. b) in
    let front =
      Float.exp
        ((a *. Float.log x) +. (b *. Float.log (1.0 -. x)) -. ln_beta)
    in
    (* continued fraction converges fastest when x < (a+1)/(a+b+2) *)
    if x > (a +. 1.0) /. (a +. b +. 2.0) then
      1.0 -. incomplete_beta b a (1.0 -. x)
    else begin
      let tiny = 1e-30 in
      let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
      let c = ref 1.0 in
      let d = ref (1.0 -. (qab *. x /. qap)) in
      if Float.abs !d < tiny then d := tiny;
      d := 1.0 /. !d;
      let h = ref !d in
      (try
         for m = 1 to 200 do
           let fm = float_of_int m in
           let m2 = 2.0 *. fm in
           let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
           d := 1.0 +. (aa *. !d);
           if Float.abs !d < tiny then d := tiny;
           c := 1.0 +. (aa /. !c);
           if Float.abs !c < tiny then c := tiny;
           d := 1.0 /. !d;
           h := !h *. !d *. !c;
           let aa =
             -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2))
           in
           d := 1.0 +. (aa *. !d);
           if Float.abs !d < tiny then d := tiny;
           c := 1.0 +. (aa /. !c);
           if Float.abs !c < tiny then c := tiny;
           d := 1.0 /. !d;
           let del = !d *. !c in
           h := !h *. del;
           if Float.abs (del -. 1.0) < 1e-13 then raise Exit
         done
       with Exit -> ());
      front *. !h /. a
    end
  end

let student_t_cdf ~df t =
  (* P(T <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0 *)
  let x = df /. (df +. (t *. t)) in
  let tail = incomplete_beta (df /. 2.0) 0.5 x /. 2.0 in
  if t >= 0.0 then 1.0 -. tail else tail

let welch_t_test xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx < 2 || ny < 2 then
    invalid_arg "Significance.welch_t_test: need >= 2 observations per sample";
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let vx = Descriptive.variance xs and vy = Descriptive.variance ys in
  let sx = vx /. float_of_int nx and sy = vy /. float_of_int ny in
  if sx +. sy = 0.0 then
    (* identical constant samples: no evidence of difference *)
    { statistic = 0.0; p_value = (if mx = my then 1.0 else 0.0) }
  else begin
    let t = (mx -. my) /. sqrt (sx +. sy) in
    let df =
      ((sx +. sy) ** 2.0)
      /. ((sx ** 2.0 /. float_of_int (nx - 1)) +. (sy ** 2.0 /. float_of_int (ny - 1)))
    in
    let p = 2.0 *. (1.0 -. student_t_cdf ~df (Float.abs t)) in
    { statistic = t; p_value = Float.min 1.0 p }
  end

(* standard normal CDF via erfc-like rational approximation
   (Abramowitz & Stegun 26.2.17, |error| < 7.5e-8) *)
let normal_cdf z =
  let b = [| 0.319381530; -0.356563782; 1.781477937; -1.821255978; 1.330274429 |] in
  let az = Float.abs z in
  let t = 1.0 /. (1.0 +. (0.2316419 *. az)) in
  let poly =
    t *. (b.(0) +. (t *. (b.(1) +. (t *. (b.(2) +. (t *. (b.(3) +. (t *. b.(4)))))))))
  in
  let pdf = Float.exp (-.(az *. az) /. 2.0) /. sqrt (2.0 *. Float.pi) in
  let upper = pdf *. poly in
  if z >= 0.0 then 1.0 -. upper else upper

let mann_whitney_u xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx < 2 || ny < 2 then
    invalid_arg "Significance.mann_whitney_u: need >= 2 observations per sample";
  (* rank the pooled sample, averaging ranks within ties *)
  let pooled =
    Array.append (Array.map (fun x -> (x, 0)) xs) (Array.map (fun y -> (y, 1)) ys)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) pooled;
  let n = nx + ny in
  let ranks = Array.make n 0.0 in
  let tie_correction = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    let v = fst pooled.(!i) in
    while !j < n - 1 && fst pooled.(!j + 1) = v do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      ranks.(k) <- avg_rank
    done;
    let t = float_of_int (!j - !i + 1) in
    tie_correction := !tie_correction +. ((t ** 3.0) -. t);
    i := !j + 1
  done;
  let rank_sum_x = ref 0.0 in
  Array.iteri (fun k (_, src) -> if src = 0 then rank_sum_x := !rank_sum_x +. ranks.(k)) pooled;
  let fnx = float_of_int nx and fny = float_of_int ny and fn = float_of_int n in
  let u = !rank_sum_x -. (fnx *. (fnx +. 1.0) /. 2.0) in
  let mu = fnx *. fny /. 2.0 in
  let sigma2 =
    fnx *. fny /. 12.0
    *. (fn +. 1.0 -. (!tie_correction /. (fn *. (fn -. 1.0))))
  in
  if sigma2 <= 0.0 then { statistic = u; p_value = 1.0 }
  else begin
    (* continuity correction *)
    let z = (u -. mu -. (if u > mu then 0.5 else -0.5)) /. sqrt sigma2 in
    let p = 2.0 *. (1.0 -. normal_cdf (Float.abs z)) in
    { statistic = u; p_value = Float.min 1.0 p }
  end
