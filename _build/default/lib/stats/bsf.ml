module Rng = Hypart_rng.Rng

type point = { budget : float; cost : float }

let curve records =
  let _, _, rev_points =
    List.fold_left
      (fun (elapsed, best, acc) (seconds, cost) ->
        let elapsed = elapsed +. seconds in
        if cost < best then (elapsed, cost, { budget = elapsed; cost } :: acc)
        else (elapsed, best, acc))
      (0.0, infinity, []) records
  in
  List.rev rev_points

let value_at points tau =
  List.fold_left
    (fun acc p -> if p.budget <= tau then p.cost else acc)
    infinity points

type band = { p10 : float array; median : float array; p90 : float array }

(* one resampled run sequence long enough to cover the largest budget *)
let resample_curve rng records max_budget =
  let n = Array.length records in
  let seq = ref [] and elapsed = ref 0.0 in
  while !elapsed < max_budget do
    let seconds, cost = records.(Rng.int rng n) in
    let seconds = Float.max seconds 1e-9 in
    elapsed := !elapsed +. seconds;
    seq := (seconds, cost) :: !seq
  done;
  curve (List.rev !seq)

let quantile_band rng ~records ~budgets ~resamples =
  if Array.length records = 0 then invalid_arg "Bsf.quantile_band: no records";
  if resamples < 1 then invalid_arg "Bsf.quantile_band: resamples must be >= 1";
  let max_budget = Array.fold_left max 0.0 budgets in
  let nb = Array.length budgets in
  let samples = Array.init nb (fun _ -> Array.make resamples infinity) in
  for r = 0 to resamples - 1 do
    let points = resample_curve rng records max_budget in
    Array.iteri (fun i tau -> samples.(i).(r) <- value_at points tau) budgets
  done;
  let quantile q i =
    let xs = samples.(i) in
    if Array.exists (fun x -> x = infinity) xs then
      (* quantiles over a sample containing infinities are only finite
         when the quantile position avoids them; sorting handles it *)
      (let sorted = Array.copy xs in
       Array.sort compare sorted;
       let pos = int_of_float (q *. float_of_int (resamples - 1)) in
       sorted.(pos))
    else Descriptive.quantile xs q
  in
  {
    p10 = Array.init nb (quantile 0.10);
    median = Array.init nb (quantile 0.50);
    p90 = Array.init nb (quantile 0.90);
  }

let expected_curve rng ~records ~budgets ~resamples =
  if Array.length records = 0 then invalid_arg "Bsf.expected_curve: no records";
  if resamples < 1 then invalid_arg "Bsf.expected_curve: resamples must be >= 1";
  let n = Array.length records in
  let totals = Array.make (Array.length budgets) 0.0 in
  for _ = 1 to resamples do
    (* one random sequence: sample starts with replacement until the
       largest budget is exhausted *)
    let max_budget = Array.fold_left max 0.0 budgets in
    let seq = ref [] and elapsed = ref 0.0 in
    while !elapsed < max_budget do
      let seconds, cost = records.(Rng.int rng n) in
      (* guard against zero-time records looping forever *)
      let seconds = Float.max seconds 1e-9 in
      elapsed := !elapsed +. seconds;
      seq := (seconds, cost) :: !seq
    done;
    let points = curve (List.rev !seq) in
    Array.iteri
      (fun i tau -> totals.(i) <- totals.(i) +. value_at points tau)
      budgets
  done;
  Array.map (fun t -> t /. float_of_int resamples) totals
