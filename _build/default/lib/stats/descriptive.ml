type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.summarize: empty sample";
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
    median = median xs;
  }

let of_ints = Array.map float_of_int

let min_avg cuts =
  if Array.length cuts = 0 then invalid_arg "Descriptive.min_avg: empty sample";
  let mn = Array.fold_left min cuts.(0) cuts in
  let avg = mean (of_ints cuts) in
  Printf.sprintf "%d/%d" mn (int_of_float (Float.round avg))
