type t = { lo : float; hi : float; counts : int array; n : int }

let build ~bins xs =
  if bins < 1 then invalid_arg "Histogram.build: bins must be >= 1";
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.build: empty sample";
  let lo = Array.fold_left min xs.(0) xs in
  let hi = Array.fold_left max xs.(0) xs in
  let counts = Array.make bins 0 in
  if lo = hi then counts.(bins / 2) <- n
  else begin
    let width = (hi -. lo) /. float_of_int bins in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      xs
  end;
  { lo; hi; counts; n }

let bin_of t x =
  if x < t.lo || x > t.hi then None
  else if t.lo = t.hi then Some (Array.length t.counts / 2)
  else begin
    let bins = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int bins in
    let b = int_of_float ((x -. t.lo) /. width) in
    Some (if b >= bins then bins - 1 else b)
  end

let render ?(width = 40) t =
  let bins = Array.length t.counts in
  let max_count = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  let bin_width =
    if t.lo = t.hi then 0.0 else (t.hi -. t.lo) /. float_of_int bins
  in
  Array.iteri
    (fun i c ->
      let lo = t.lo +. (float_of_int i *. bin_width) in
      let hi = lo +. bin_width in
      let bar = c * width / max_count in
      Buffer.add_string buf
        (Printf.sprintf "[%10.1f, %10.1f) %6d %s\n" lo hi c (String.make bar '#')))
    t.counts;
  Buffer.contents buf
