module Rng = Hypart_rng.Rng

type interval = { lo : float; hi : float; point : float }

let confidence_interval ?(resamples = 1000) ?(level = 0.95) rng ~statistic xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.confidence_interval: empty sample";
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Bootstrap.confidence_interval: level outside (0, 1)";
  if resamples < 1 then
    invalid_arg "Bootstrap.confidence_interval: resamples must be >= 1";
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Rng.int rng n)) in
        statistic resample)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  {
    lo = Descriptive.quantile stats alpha;
    hi = Descriptive.quantile stats (1.0 -. alpha);
    point = statistic xs;
  }

let mean_ci ?resamples ?level rng xs =
  confidence_interval ?resamples ?level rng ~statistic:Descriptive.mean xs
