(** Descriptive statistics over float samples.

    The paper (§3.2) asks that reported averages come with "standard
    deviations and other descriptors of the distributions of all
    numbers"; {!summary} is that descriptor set. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for samples of size < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [0, 1]; linear interpolation between
    order statistics.  @raise Invalid_argument on empty input or [q]
    outside [0, 1]. *)

val median : float array -> float

val summarize : float array -> summary
(** @raise Invalid_argument on empty input. *)

val of_ints : int array -> float array

val min_avg : int array -> string
(** The paper's "minimum/average" cell format, e.g. ["333/639"];
    average rounded to the nearest integer. *)
