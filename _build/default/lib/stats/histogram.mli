(** Fixed-width histograms — the distribution descriptors the paper
    says should accompany every reported average (§3.2: data "should
    contain" the "standard deviations and other descriptors of the
    distributions of all numbers"). *)

type t = private {
  lo : float;
  hi : float;
  counts : int array;
  n : int;  (** total observations *)
}

val build : bins:int -> float array -> t
(** [build ~bins xs] spans [[min xs, max xs]]; the top edge is
    inclusive.  A constant sample lands in the middle bin.
    @raise Invalid_argument on empty input or [bins < 1]. *)

val bin_of : t -> float -> int option
(** Bin index of a value; [None] outside the range. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per bin: range, count, bar. *)
