(** Speed-dependent ranking diagrams (Schreiber & Martin; paper §3.2).

    Given each heuristic's expected best-so-far value at a grid of CPU
    budgets (and, optionally, across instances), report which heuristic
    dominates each (budget) or (instance, budget) cell — the "ranking
    diagram diagnostic that depicts regions of (instance size, CPU
    time) dominance". *)

type 'name row = {
  budget : float;
  winner : 'name;
  values : ('name * float) list;  (** all heuristics' expected costs *)
}

val rank_at_budgets :
  budgets:float array ->
  curves:('name * float array) list ->
  'name row list
(** [curves] pairs each heuristic with its expected BSF values at
    [budgets] (as computed by {!Bsf.expected_curve}).  Ties go to the
    heuristic listed first.  @raise Invalid_argument when a curve's
    length disagrees with [budgets] or [curves] is empty. *)

val dominance_table :
  budgets:float array ->
  per_instance:(string * ('name * float array) list) list ->
  (string * 'name array) list
(** One winners-row per instance: the (instance, budget) dominance
    matrix of the paper's ranking diagram. *)
