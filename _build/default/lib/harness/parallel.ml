let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map_seeds ?domains ~seeds f =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Parallel.map_seeds: domains must be >= 1";
      d
    | None -> recommended_domains ()
  in
  let seeds = Array.of_list seeds in
  let n = Array.length seeds in
  if n = 0 then []
  else begin
    let domains = min domains n in
    let results = Array.make n None in
    (* static block partition: domain d owns seeds [lo, hi) *)
    let worker d () =
      let lo = d * n / domains and hi = (d + 1) * n / domains in
      for i = lo to hi - 1 do
        results.(i) <- Some (f seeds.(i))
      done
    in
    let handles = Array.init domains (fun d -> Domain.spawn (worker d)) in
    Array.iter Domain.join handles;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         results)
  end

let best_of ?domains ~seeds run =
  let results = map_seeds ?domains ~seeds run in
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some (bc, _) -> if fst r < bc then Some r else best)
    None results
