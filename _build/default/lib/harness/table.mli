(** Plain-text and CSV rendering of result tables, laid out like the
    paper's tables (first column(s) describe the configuration, one
    column per test case or configuration). *)

type t

val make : headers:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width disagrees with the
    headers. *)

val add_separator : t -> unit
(** A horizontal rule, used between the engine blocks of Table 1. *)

val add_span : t -> string -> unit
(** A full-width centred label row, e.g. ["Flat LIFO FM"]. *)

val render : t -> string
(** Aligned monospace rendering with a header rule. *)

val to_csv : t -> string
(** Headers + data rows (spans become single-cell rows; separators are
    dropped). *)

val print : t -> unit
(** [render] to stdout. *)
