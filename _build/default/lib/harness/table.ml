type row = Cells of string list | Separator | Span of string

type t = { headers : string list; mutable rows : row list (* reversed *) }

let make ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows
let add_span t label = t.rows <- Span label :: t.rows

let widths t =
  let w = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Cells cells ->
        List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
      | Separator | Span _ -> ())
    t.rows;
  w

let render t =
  let w = widths t in
  let ncols = Array.length w in
  let total_width = Array.fold_left ( + ) 0 w + (3 * (ncols - 1)) in
  let buf = Buffer.create 1024 in
  let pad i s =
    let extra = w.(i) - String.length s in
    (* first column left-aligned, the rest right-aligned *)
    if i = 0 then s ^ String.make extra ' ' else String.make extra ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells cells -> emit_cells cells
      | Separator ->
        Buffer.add_string buf (String.make total_width '-');
        Buffer.add_char buf '\n'
      | Span label ->
        let pad_total = max 0 (total_width - String.length label) in
        let left = pad_total / 2 in
        Buffer.add_string buf (String.make left ' ');
        Buffer.add_string buf label;
        Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter
    (function
      | Cells cells -> emit cells
      | Span label -> emit [ label ]
      | Separator -> ())
    (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)
