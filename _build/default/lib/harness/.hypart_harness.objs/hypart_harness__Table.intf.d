lib/harness/table.mli:
