lib/harness/machine.mli:
