lib/harness/parallel.mli:
