lib/harness/machine.ml: Sys
