lib/harness/experiments.mli: Hypart_partition Table
