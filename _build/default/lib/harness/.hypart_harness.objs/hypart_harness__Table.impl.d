lib/harness/table.ml: Array Buffer List String
