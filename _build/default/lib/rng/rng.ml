(* splitmix64: state advances by a fixed odd constant ("gamma"); output is
   a strong 64-bit mix of the state.  See Steele, Lea & Flood, "Fast
   splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy r = { state = r.state }

let bits64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix64 r.state

let split r =
  (* A fresh state derived from one draw is independent for all practical
     purposes given mix64's avalanche. *)
  { state = mix64 (bits64 r) }

(* Unbiased bounded integers via rejection on the top 61 bits.  OCaml's
   native int is 63-bit (max 2^62 - 1), so [1 lsl 61] is the largest
   power-of-two draw range whose size is itself representable. *)
let bits61 r = Int64.to_int (Int64.shift_right_logical (bits64 r) 3)

let int r bound =
  assert (bound > 0);
  if bound land (bound - 1) = 0 then bits61 r land (bound - 1)
  else begin
    let range = 1 lsl 61 in
    let limit = range - (range mod bound) in
    let rec draw () =
      let v = bits61 r in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in r lo hi =
  assert (lo <= hi);
  lo + int r (hi - lo + 1)

let float r bound =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 r) 11) in
  bound *. (v /. 9007199254740992.0)

let bool r = Int64.logand (bits64 r) 1L = 1L

let geometric r ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 1
  else
    let u = float r 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    1 + int_of_float (Float.log u /. Float.log (1. -. p))

let shuffle_in_place r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation r n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place r a;
  a

let sample_distinct r ~n ~universe =
  assert (n <= universe);
  if n * 3 >= universe then begin
    let a = permutation r universe in
    Array.sub a 0 n
  end else begin
    (* Partial Fisher-Yates over a sparse map of displaced slots. *)
    let displaced = Hashtbl.create (2 * n) in
    let get i = match Hashtbl.find_opt displaced i with Some v -> v | None -> i in
    let out = Array.make n 0 in
    for k = 0 to n - 1 do
      let j = int_in r k (universe - 1) in
      out.(k) <- get j;
      Hashtbl.replace displaced j (get k)
    done;
    out
  end

let choose_weighted r w =
  let total = Array.fold_left ( +. ) 0. w in
  assert (total > 0.);
  let target = float r total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
