(** Deterministic pseudo-random number generation.

    All randomness in [hypart] flows through values of type {!t}, passed
    explicitly, so that every experiment is reproducible from its seed.
    The core generator is splitmix64 (Steele, Lea & Flood 2014): a tiny,
    fast, well-distributed 64-bit generator whose state is a single
    integer, which makes {!split} and {!copy} trivial and cheap. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent duplicate of the current state. *)

val split : t -> t
(** [split r] draws from [r] and returns a new generator whose stream is
    (statistically) independent of the remainder of [r]'s stream.  Used
    to give sub-experiments their own generators so that adding draws to
    one does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int r bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in r lo hi] is uniform on [lo, hi] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float r bound] is uniform on [0, bound). *)

val bool : t -> bool

val geometric : t -> p:float -> int
(** Geometric variate with success probability [p] (0 < p <= 1): the
    number of trials until first success, support {1, 2, ...}. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation r n] is a uniformly random permutation of [0..n-1]. *)

val sample_distinct : t -> n:int -> universe:int -> int array
(** [sample_distinct r ~n ~universe] draws [n] distinct integers from
    [0..universe-1], in random order.  Requires [n <= universe].  Uses a
    partial Fisher-Yates for small [n] relative to [universe] and a full
    shuffle otherwise. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted r w] returns index [i] with probability
    [w.(i) / sum w].  Weights must be nonnegative with positive sum. *)
