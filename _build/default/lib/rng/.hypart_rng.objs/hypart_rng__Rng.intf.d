lib/rng/rng.mli:
