(* The paper's driving application (§2.1): top-down global placement by
   recursive min-cut bisection with terminal propagation.  Places a
   synthetic ibm01 twin and compares half-perimeter wirelength against
   a random placement, and a min-cut placer against a weak-partitioner
   placer — showing why partitioner quality matters to the use model.

   Run with: dune exec examples/topdown_placement.exe *)

module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Suite = Hypart_generator.Ibm_suite
module Fm_config = Hypart_fm.Fm_config
module Topdown = Hypart_placement.Topdown
module Detailed = Hypart_placement.Detailed

let () =
  let h = Suite.instance ~scale:16.0 "ibm01" in
  Format.printf "placing %a@." H.pp h;

  let random = Topdown.random_placement (Rng.create 1) h in
  Printf.printf "random placement HPWL:          %12.0f\n"
    (Topdown.hpwl h random);

  let t0 = Sys.time () in
  let weak_config =
    { Topdown.default_config with Topdown.fm = Fm_config.reported_lifo }
  in
  let weak = Topdown.place ~config:weak_config (Rng.create 2) h in
  let t_weak = Sys.time () -. t0 in
  Printf.printf "weak-partitioner placement HPWL: %11.0f  (%.2fs)\n"
    (Topdown.hpwl h weak) t_weak;

  let t0 = Sys.time () in
  let strong = Topdown.place (Rng.create 2) h in
  let t_strong = Sys.time () -. t0 in
  Printf.printf "min-cut placement HPWL:          %11.0f  (%.2fs)\n"
    (Topdown.hpwl h strong) t_strong;

  let improvement =
    100.0 *. (1.0 -. (Topdown.hpwl h strong /. Topdown.hpwl h random))
  in
  Printf.printf "\nmin-cut placement improves on random by %.1f%%\n" improvement;

  (* the full §2.1 pipeline: coarse placement -> row legalization ->
     detailed placement by stochastic hill-climbing *)
  let legal = Detailed.legalize h strong in
  Printf.printf "\nlegalized onto %d rows:           %11.0f\n"
    legal.Detailed.rows.Detailed.num_rows
    (Topdown.hpwl h legal.Detailed.placement);
  let t0 = Sys.time () in
  let refined, stats = Detailed.anneal (Rng.create 3) h legal in
  let t_anneal = Sys.time () -. t0 in
  Printf.printf "after annealing (%d/%d accepted):  %10.0f  (%.2fs)\n"
    stats.Detailed.accepted stats.Detailed.attempted
    (Topdown.hpwl h refined.Detailed.placement)
    t_anneal;

  (* the implied-runtime observation of §2.1: a placement tool budgets
     roughly 1 CPU minute per 6000 cells, so partitioning runtimes must
     be seconds, not minutes *)
  let budget = float_of_int (H.num_vertices h) /. 6000.0 *. 60.0 in
  Printf.printf
    "\nuse-model budget for this size (1 min / 6000 cells): %.1fs; full pipeline used %.2fs\n"
    budget
    (t_strong +. t_anneal)
