(* §2.1 of the paper observes that in the top-down placement use model
   "almost all hypergraph partitioning instances have many vertices
   fixed in partitions due to terminal propagation or pad locations",
   and that fixed terminals "fundamentally change the nature of the
   partitioning problem" (Caldwell, Kahng & Markov, DAC'99).

   This example fixes a growing fraction of vertices (split evenly
   between the sides, as terminal propagation produces) and measures
   what happens to cut quality, runtime and start-to-start variance:
   fixed instances are "easier" — faster convergence and much smaller
   spread — which is why heuristics tuned only on unfixed benchmarks
   can be mis-ranked for the real use model.

   Run with: dune exec examples/fixed_terminals.exe
   (the same table regenerates via: dune exec bin/hypart.exe -- fixed) *)

module H = Hypart_hypergraph.Hypergraph
module Suite = Hypart_generator.Ibm_suite
module Experiments = Hypart_harness.Experiments
module Table = Hypart_harness.Table

let () =
  let h = Suite.instance ~scale:8.0 "ibm01" in
  Format.printf "%a@.@." H.pp h;
  Table.print
    (Experiments.fixed_terminals_table ~scale:8.0 ~runs:12 ~instance:"ibm01"
       ~seed:5 ());
  print_newline ();
  print_endline
    "Reading the table: as the fixed fraction grows, the start-to-start\n\
     standard deviation collapses and runs converge in fewer passes —\n\
     fixed instances are easier and less noisy, so conclusions drawn\n\
     only from unfixed benchmarks may not transfer to the use model."
