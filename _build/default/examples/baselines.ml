(* A tour of the partitioning landscape the paper's experiments sit in:
   the historical KL baseline, the spectral EIG1 ratio-cut relaxation,
   flat FM/CLIP and the multilevel engine, compared on one instance in
   both quality and runtime — ending with the non-dominated frontier
   the paper recommends reporting (§3.2).

   Run with: dune exec examples/baselines.exe *)

module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Suite = Hypart_generator.Ibm_suite
module Problem = Hypart_partition.Problem
module Fm = Hypart_fm.Fm
module Fm_config = Hypart_fm.Fm_config
module Ml = Hypart_multilevel.Ml_partitioner
module Kl = Hypart_kl.Kl
module Spectral = Hypart_spectral.Spectral
module Pareto = Hypart_stats.Pareto

let () =
  let h = Suite.instance ~scale:16.0 "ibm01" in
  Format.printf "%a@.@." H.pp h;
  let problem = Problem.make ~tolerance:0.10 h in
  let module B = Hypart_partition.Bipartition in
  let timed f =
    let t0 = Sys.time () in
    let cut, sol = f () in
    (cut, sol, Sys.time () -. t0)
  in
  let entries =
    [
      ( "KL (1970)",
        timed (fun () ->
            let r = Kl.run_random_start (Rng.create 1) h in
            (r.Kl.cut, r.Kl.solution)) );
      ( "Spectral EIG1",
        timed (fun () ->
            let r = Spectral.run (Rng.create 1) h in
            (r.Spectral.cut, r.Spectral.solution)) );
      ( "Simulated ann.",
        timed (fun () ->
            let r = Hypart_sa.Sa_partitioner.run ~moves_per_vertex:60 (Rng.create 1) problem in
            (r.Hypart_sa.Sa_partitioner.cut, r.Hypart_sa.Sa_partitioner.solution)) );
      ( "flat LIFO FM",
        timed (fun () ->
            let r =
              Fm.run_random_start ~config:Fm_config.strong_lifo (Rng.create 1)
                problem
            in
            (r.Fm.cut, r.Fm.solution)) );
      ( "flat CLIP FM",
        timed (fun () ->
            let r =
              Fm.run_random_start ~config:Fm_config.strong_clip (Rng.create 1)
                problem
            in
            (r.Fm.cut, r.Fm.solution)) );
      ( "ML CLIP",
        timed (fun () ->
            let r = Ml.run ~config:Ml.ml_clip (Rng.create 1) problem in
            (r.Fm.cut, r.Fm.solution)) );
      ( "ML CLIP x8 + V",
        timed (fun () ->
            let r, _ =
              Ml.multistart ~config:Ml.ml_clip ~vcycle_best:1 (Rng.create 1)
                problem ~starts:8
            in
            (r.Fm.cut, r.Fm.solution)) );
    ]
  in
  Printf.printf "%-16s %8s %10s %14s\n" "heuristic" "cut" "CPU s" "split %";
  List.iter
    (fun (name, (cut, sol, dt)) ->
      let w0 = float_of_int (B.part_weight sol 0) in
      let total = float_of_int (H.total_vertex_weight h) in
      Printf.printf "%-16s %8d %10.3f %8.0f/%.0f\n" name cut dt
        (100. *. w0 /. total)
        (100. *. (1. -. (w0 /. total))))
    entries;
  print_endline
    "\nNote the spectral row: ratio cut tolerates a lopsided split, so its\n\
     raw cut is not comparable to the balance-constrained rows — the\n\
     paper's point that comparisons must be \"apples to apples\".";
  (* frontier over the balance-constrained heuristics only *)
  let points =
    List.filter_map
      (fun (name, (cut, sol, dt)) ->
        if B.is_legal sol problem.Hypart_partition.Problem.balance then
          Some { Pareto.label = name; cost = float_of_int cut; runtime = dt }
        else None)
      entries
  in
  print_endline "\nnon-dominated frontier among balance-legal heuristics:";
  List.iter
    (fun p ->
      Printf.printf "  %-16s cut %.0f  %.3fs\n" p.Pareto.label p.Pareto.cost
        p.Pareto.runtime)
    (Pareto.frontier points)
