(* Quickstart: build a hypergraph, partition it three ways, inspect the
   results.  Run with: dune exec examples/quickstart.exe *)

module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Problem = Hypart_partition.Problem
module Bipartition = Hypart_partition.Bipartition
module Objective = Hypart_partition.Objective
module Fm = Hypart_fm.Fm
module Fm_config = Hypart_fm.Fm_config
module Ml = Hypart_multilevel.Ml_partitioner
module Suite = Hypart_generator.Ibm_suite

let () =
  (* 1. A hypergraph can be built directly: 6 cells, 4 nets.  Cell 4 is
     a macro with area 5. *)
  let tiny =
    H.create ~num_vertices:6
      ~vertex_weights:[| 1; 1; 1; 1; 5; 1 |]
      ~edges:[| [| 0; 1; 2 |]; [| 2; 3 |]; [| 3; 4; 5 |]; [| 0; 5 |] |]
      ()
  in
  Format.printf "tiny instance: %a@." H.pp tiny;

  (* 2. Wrap it in a problem: balance tolerance 20% (each side must hold
     40-60%% of the total area), no fixed cells. *)
  let problem = Problem.make ~tolerance:0.20 tiny in
  let rng = Rng.create 42 in
  let result = Fm.run_random_start ~config:Fm_config.strong_lifo rng problem in
  Printf.printf "FM cut: %d (legal: %b)\n" result.Fm.cut result.Fm.legal;
  Printf.printf "assignment:";
  for v = 0 to H.num_vertices tiny - 1 do
    Printf.printf " %d:%d" v (Bipartition.side result.Fm.solution v)
  done;
  print_newline ();
  Printf.printf "ratio cut: %.3f, absorption: %.3f\n\n"
    (Objective.evaluate Objective.Ratio_cut tiny result.Fm.solution)
    (Objective.evaluate Objective.Absorption tiny result.Fm.solution);

  (* 3. Realistic scale: a synthetic twin of ISPD98 ibm01 (scaled 8x
     down), partitioned at the paper's 2%% tolerance by flat FM, CLIP
     and the multilevel engine. *)
  let h = Suite.instance ~scale:8.0 "ibm01" in
  Format.printf "ibm01 twin: %a@." H.pp h;
  let problem = Problem.make ~tolerance:0.02 h in
  let report name result =
    Printf.printf "  %-12s cut %5d  (%d passes, %d moves)\n" name result.Fm.cut
      result.Fm.stats.Fm.passes result.Fm.stats.Fm.moves
  in
  report "flat LIFO" (Fm.run_random_start ~config:Fm_config.strong_lifo (Rng.create 7) problem);
  report "flat CLIP" (Fm.run_random_start ~config:Fm_config.strong_clip (Rng.create 7) problem);
  report "ML CLIP" (Ml.run ~config:Ml.ml_clip (Rng.create 7) problem);

  (* 4. Multistart: 8 independent ML starts, keep the best, V-cycle it. *)
  let best, records =
    Ml.multistart ~config:Ml.ml_clip ~vcycle_best:1 (Rng.create 9) problem
      ~starts:8
  in
  Printf.printf "multistart best-of-8 + V-cycle: cut %d\n" best.Fm.cut;
  Printf.printf "per-start cuts: %s\n"
    (String.concat " " (List.map (fun r -> string_of_int r.Fm.start_cut) records))
