(* §2.3 of the paper: the CLIP corking effect.  CLIP starts every pass
   with all moves in the zero-gain bucket, highest-initial-gain cells at
   the heads.  On actual-area instances the highest-gain cells tend to
   be the largest ones; when such a cell is too heavy to move legally it
   "corks" the bucket and the pass can terminate having moved nothing.
   The fix: never insert cells heavier than the balance slack.

   This demo traces corking events with and without the fix on an
   instance with realistic macros, and shows the quality consequence.

   Run with: dune exec examples/corking_demo.exe *)

module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Suite = Hypart_generator.Ibm_suite
module Balance = Hypart_partition.Balance
module Problem = Hypart_partition.Problem
module Fm = Hypart_fm.Fm
module Fm_config = Hypart_fm.Fm_config
module D = Hypart_stats.Descriptive

let runs = 15

let trace name config rng problem =
  let cuts = Array.make runs 0 in
  let corks = ref 0 and empty = ref 0 in
  for i = 0 to runs - 1 do
    let r = Fm.run_random_start ~config rng problem in
    cuts.(i) <- r.Fm.cut;
    corks := !corks + r.Fm.stats.Fm.corking_events;
    empty := !empty + r.Fm.stats.Fm.empty_passes
  done;
  Printf.printf "  %-26s min/avg cut %-10s corking events/run %6.1f   empty passes/run %.2f\n"
    name (D.min_avg cuts)
    (float_of_int !corks /. float_of_int runs)
    (float_of_int !empty /. float_of_int runs);
  cuts

let () =
  let h = Suite.instance ~scale:8.0 "ibm02" in
  let problem = Problem.make ~tolerance:0.02 h in
  let slack = Balance.slack problem.Problem.balance in
  let oversized = ref 0 and max_area = ref 0 in
  for v = 0 to H.num_vertices h - 1 do
    let w = H.vertex_weight h v in
    if w > slack then incr oversized;
    if w > !max_area then max_area := w
  done;
  Format.printf "%a@." H.pp h;
  Printf.printf
    "balance slack at 2%%: %d area units; %d cells exceed it (max area %d)\n\
     — exactly the cells CLIP puts at the heads of its zero-gain buckets.\n\n"
    slack !oversized !max_area;
  let no_fix = trace "CLIP without fix" Fm_config.reported_clip (Rng.create 3) problem in
  let fixed = trace "CLIP with corking fix" Fm_config.strong_clip (Rng.create 3) problem in
  let avg a = D.mean (D.of_ints a) in
  Printf.printf
    "\nthe fix improves the average cut by %.1fx at essentially zero overhead.\n"
    (avg no_fix /. avg fixed)
