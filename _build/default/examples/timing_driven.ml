(* The use model (§2.1) speaks of "timing- and routing congestion-driven
   recursive min-cut bisection": in practice, nets on critical timing
   paths receive boosted weights so the min-cut partitioner avoids
   cutting them (a cut net crosses the chip and picks up delay).

   This example marks a random 5% of nets as timing-critical, boosts
   their weights 10x, and compares partitioning with and without the
   boost: the weighted run cuts far fewer critical nets at a modest
   total-cut premium — weighted hyperedges are all the mechanism needed.

   Run with: dune exec examples/timing_driven.exe *)

module H = Hypart_hypergraph.Hypergraph
module Rng = Hypart_rng.Rng
module Suite = Hypart_generator.Ibm_suite
module Problem = Hypart_partition.Problem
module Bipartition = Hypart_partition.Bipartition
module Ml = Hypart_multilevel.Ml_partitioner

let () =
  let h = Suite.instance ~scale:8.0 "ibm01" in
  Format.printf "%a@.@." H.pp h;
  let rng = Rng.create 7 in
  let ne = H.num_edges h in
  let critical = Array.make ne false in
  let n_critical = ne / 20 in
  Array.iter
    (fun e -> critical.(e) <- true)
    (Hypart_rng.Rng.sample_distinct rng ~n:n_critical ~universe:ne);
  Printf.printf "critical nets: %d of %d (weight boosted 10x)\n\n" n_critical ne;
  let boosted =
    H.reweight_edges h
      ~weights:
        (Array.init ne (fun e ->
             let w = H.edge_weight h e in
             if critical.(e) then 10 * w else w))
  in
  let report name instance =
    let problem = Problem.make ~tolerance:0.02 instance in
    let r = Ml.run ~config:Ml.ml_clip (Rng.create 9) problem in
    (* evaluate both metrics on the ORIGINAL weights *)
    let plain_cut = Bipartition.cut h r.Hypart_fm.Fm.solution in
    let critical_cut = ref 0 in
    for e = 0 to ne - 1 do
      if critical.(e) then begin
        let c0, c1 = Bipartition.pins_on_side h r.Hypart_fm.Fm.solution e in
        if c0 > 0 && c1 > 0 then incr critical_cut
      end
    done;
    Printf.printf "  %-18s total cut %5d   critical nets cut %4d\n" name
      plain_cut !critical_cut
  in
  report "plain min-cut" h;
  report "timing-weighted" boosted;
  print_newline ();
  print_endline
    "The weighted run trades a small increase in total cut for a large\n\
     reduction in cut critical nets — the timing-driven use model the\n\
     paper's partitioners must serve, and why every engine here treats\n\
     hyperedge weights as first-class."
