examples/implicit_decisions.mli:
