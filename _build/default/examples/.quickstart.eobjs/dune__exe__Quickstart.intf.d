examples/quickstart.mli:
