examples/corking_demo.mli:
