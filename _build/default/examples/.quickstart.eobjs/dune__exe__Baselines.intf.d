examples/baselines.mli:
