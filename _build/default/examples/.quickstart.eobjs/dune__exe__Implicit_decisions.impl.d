examples/implicit_decisions.ml: Array Hypart_fm Hypart_generator Hypart_partition Hypart_rng Hypart_stats List Printf
