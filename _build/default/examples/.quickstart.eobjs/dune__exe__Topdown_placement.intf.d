examples/topdown_placement.mli:
