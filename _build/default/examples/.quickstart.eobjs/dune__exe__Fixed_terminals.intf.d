examples/fixed_terminals.mli:
