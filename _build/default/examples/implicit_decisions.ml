(* §2.2 of the paper: implicit implementation decisions — tie-breaking
   and zero-delta-gain handling — swing flat FM results by amounts that
   dwarf typical published algorithm improvements.  This example walks
   the decision matrix on one instance and reports the dynamic range,
   plus a significance test between the best and worst combinations.

   Run with: dune exec examples/implicit_decisions.exe *)

module Rng = Hypart_rng.Rng
module Suite = Hypart_generator.Ibm_suite
module Problem = Hypart_partition.Problem
module Fm = Hypart_fm.Fm
module Fm_config = Hypart_fm.Fm_config
module D = Hypart_stats.Descriptive
module Sig = Hypart_stats.Significance

let runs = 15

let () =
  let problem = Problem.make ~tolerance:0.02 (Suite.instance ~scale:8.0 "ibm01") in
  let combos =
    [
      (Fm_config.All_delta_gain, Fm_config.Away, "All-dg /Away  ");
      (Fm_config.All_delta_gain, Fm_config.Part0, "All-dg /Part0 ");
      (Fm_config.All_delta_gain, Fm_config.Toward, "All-dg /Toward");
      (Fm_config.Nonzero_only, Fm_config.Away, "Nonzero/Away  ");
      (Fm_config.Nonzero_only, Fm_config.Part0, "Nonzero/Part0 ");
      (Fm_config.Nonzero_only, Fm_config.Toward, "Nonzero/Toward");
    ]
  in
  Printf.printf "flat LIFO FM on ibm01 twin, 2%% tolerance, %d runs each\n\n" runs;
  let results =
    List.map
      (fun (update, bias, label) ->
        let config =
          Fm_config.with_bias bias (Fm_config.with_update update Fm_config.strong_lifo)
        in
        let rng = Rng.create 11 in
        let cuts =
          Array.init runs (fun _ -> (Fm.run_random_start ~config rng problem).Fm.cut)
        in
        Printf.printf "  %s  min/avg = %s\n" label (D.min_avg cuts);
        (label, cuts))
      combos
  in
  let avg cuts = D.mean (D.of_ints cuts) in
  let best = List.fold_left (fun a b -> if avg (snd b) < avg (snd a) then b else a)
      (List.hd results) (List.tl results) in
  let worst = List.fold_left (fun a b -> if avg (snd b) > avg (snd a) then b else a)
      (List.hd results) (List.tl results) in
  Printf.printf "\nbest combination:  %s (avg %.1f)\n" (fst best) (avg (snd best));
  Printf.printf "worst combination: %s (avg %.1f)\n" (fst worst) (avg (snd worst));
  Printf.printf "dynamic range: %.2fx — compare with the few percent that\n"
    (avg (snd worst) /. avg (snd best));
  Printf.printf "paper-to-paper algorithm improvements typically claim.\n\n";
  let t =
    Sig.welch_t_test (D.of_ints (snd best)) (D.of_ints (snd worst))
  in
  let u =
    Sig.mann_whitney_u (D.of_ints (snd best)) (D.of_ints (snd worst))
  in
  Printf.printf "Welch t-test best-vs-worst:    t = %+.2f, p = %.4f\n"
    t.Sig.statistic t.Sig.p_value;
  Printf.printf "Mann-Whitney U best-vs-worst:  U = %.0f, p = %.4f\n"
    u.Sig.statistic u.Sig.p_value
